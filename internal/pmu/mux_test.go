package pmu_test

// Tests for the virtualized multi-event PMU (counter multiplexing).
// The load-bearing property mirrors bulk_test.go: chopping the same
// retirement stream into any mixture of strides (BulkRetire) and
// per-instruction deliveries (OnRetire) under the FastHeadroom contract
// must produce bit-identical counts, window accounting and rotation
// sequences — that is what makes multiplexed runs engine-independent.

import (
	"fmt"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/workloads"
)

// muxMenu is the full countable-event menu, in a fixed order.
func muxMenu() []pmu.Event {
	return []pmu.Event{
		pmu.EvInstRetired, pmu.EvUopsRetired, pmu.EvBrTaken, pmu.EvCondBr,
		pmu.EvBrMispred, pmu.EvLoad, pmu.EvStore, pmu.EvFPOp, pmu.EvCall, pmu.EvRet,
	}
}

// synthStream in bulk_test.go jumps the retirement clock by at most ~42
// cycles per event; 64 is a safe per-instruction bound for replays.
const synthMaxCycles = 64

// muxReplayDirect feeds every event through OnRetire.
func muxReplayDirect(m *pmu.Mux, evs []cpu.RetireEvent) {
	for _, ev := range evs {
		m.OnRetire(ev)
	}
}

// muxReplayBulk drives the engine protocol: FastHeadroom-bounded strides
// of at most chunk events through BulkRetire, per-instruction OnRetire
// whenever the grant is zero — exactly how RunFast treats a FastMonitor.
func muxReplayBulk(m *pmu.Mux, evs []cpu.RetireEvent, chunk int) {
	i := 0
	for i < len(evs) {
		h := m.FastHeadroom()
		if h == 0 {
			m.OnRetire(evs[i])
			i++
			continue
		}
		n := chunk
		if uint64(n) > h {
			n = int(h)
		}
		if n > len(evs)-i {
			n = len(evs) - i
		}
		var c cpu.BulkCounts
		for j := 0; j < n; j++ {
			accumulate(&c, evs[i+j])
		}
		m.BulkRetire(c)
		i += n
	}
}

// diffCounts compares two complete mux outcomes.
func diffCounts(a, b []pmu.MuxCount) error {
	if len(a) != len(b) {
		return fmt.Errorf("count-list length diverges: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("event %d (%s) diverges:\n  direct %+v\n  bulk   %+v",
				i, a[i].Event, a[i], b[i])
		}
	}
	return nil
}

// TestMuxBulkEquivalence is the stride-chopping property across policies,
// budgets and timeslices.
func TestMuxBulkEquivalence(t *testing.T) {
	evs := synthStream(4000)
	final := evs[len(evs)-1].Cycle

	cases := []struct {
		name string
		cfg  pmu.MuxConfig
	}{
		{
			name: "uncontended-all-fit",
			cfg: pmu.MuxConfig{Events: muxMenu()[:3], GenCounters: 4,
				TimesliceCycles: 50, MaxCyclesPerInstr: synthMaxCycles},
		},
		{
			name: "contended-rr-short-slice",
			cfg: pmu.MuxConfig{Events: muxMenu(), GenCounters: 3,
				TimesliceCycles: 100, MaxCyclesPerInstr: synthMaxCycles},
		},
		{
			name: "contended-rr-long-slice",
			cfg: pmu.MuxConfig{Events: muxMenu(), GenCounters: 3,
				TimesliceCycles: 1500, MaxCyclesPerInstr: synthMaxCycles},
		},
		{
			name: "contended-rr-fixed-counter",
			cfg: pmu.MuxConfig{Events: muxMenu(), GenCounters: 2, FixedCounterFree: true,
				TimesliceCycles: 300, MaxCyclesPerInstr: synthMaxCycles},
		},
		{
			name: "contended-priority-starves",
			cfg: pmu.MuxConfig{Events: muxMenu(), GenCounters: 2, Policy: pmu.MuxPriority,
				TimesliceCycles: 100, MaxCyclesPerInstr: synthMaxCycles},
		},
		{
			name: "duplicate-events",
			cfg: pmu.MuxConfig{
				Events: []pmu.Event{pmu.EvInstRetired, pmu.EvInstRetired, pmu.EvLoad,
					pmu.EvLoad, pmu.EvBrTaken},
				GenCounters: 2, FixedCounterFree: true,
				TimesliceCycles: 200, MaxCyclesPerInstr: synthMaxCycles},
		},
		{
			name: "single-counter-many-events",
			cfg: pmu.MuxConfig{Events: muxMenu()[:6], GenCounters: 1,
				TimesliceCycles: 75, MaxCyclesPerInstr: synthMaxCycles},
		},
	}

	for _, tc := range cases {
		for _, chunk := range []int{1, 3, 9, 64, 4000} {
			t.Run(fmt.Sprintf("%s/chunk=%d", tc.name, chunk), func(t *testing.T) {
				direct := pmu.NewMux(tc.cfg, nil)
				muxReplayDirect(direct, evs)
				bulk := pmu.NewMux(tc.cfg, nil)
				muxReplayBulk(bulk, evs, chunk)
				if direct.Rotations != bulk.Rotations {
					t.Fatalf("rotations diverge: direct %d, bulk %d", direct.Rotations, bulk.Rotations)
				}
				if err := diffCounts(direct.Finish(final), bulk.Finish(final)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestMuxWrapsSamplingPMU: the stride-chopping property must hold with an
// inner sampling unit too — headroom is the min of both constraints, and
// the inner unit's samples must be unaffected by the wrapping.
func TestMuxWrapsSamplingPMU(t *testing.T) {
	evs := synthStream(4000)
	final := evs[len(evs)-1].Cycle
	pmuCfg := pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 50, Seed: 3}
	muxCfg := pmu.MuxConfig{Events: muxMenu(), GenCounters: 3,
		TimesliceCycles: 120, MaxCyclesPerInstr: synthMaxCycles}

	bare := pmu.New(pmuCfg)
	replayDirect(bare, evs)

	inner1 := pmu.New(pmuCfg)
	direct := pmu.NewMux(muxCfg, inner1)
	muxReplayDirect(direct, evs)
	directCounts := direct.Finish(final)

	for _, chunk := range []int{1, 7, 64, 4000} {
		inner2 := pmu.New(pmuCfg)
		bulk := pmu.NewMux(muxCfg, inner2)
		muxReplayBulk(bulk, evs, chunk)
		if err := diffUnits(inner1, inner2); err != nil {
			t.Fatalf("chunk %d: inner PMU diverges: %v", chunk, err)
		}
		if err := diffCounts(directCounts, bulk.Finish(final)); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
	}
	// Wrapping must not change what the sampling unit observes at all.
	if err := diffUnits(bare, inner1); err != nil {
		t.Fatalf("mux wrapping changed the sampling stream: %v", err)
	}
}

// TestMuxExactMatchesEngines: on a real workload under both execution
// engines, the exact counters must equal the hardware-truth Result and
// the full outcome must be engine-independent.
func TestMuxExactMatchesEngines(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.05)
	cfg := machine.IvyBridge().CPU
	muxCfg := pmu.MuxConfig{
		Events:            muxMenu(),
		GenCounters:       3,
		TimesliceCycles:   500,
		MaxCyclesPerInstr: cfg.MaxRetireCyclesPerInstr(),
	}

	mi := pmu.NewMux(muxCfg, nil)
	ri, err := cpu.Run(p, cfg, mi, 0)
	if err != nil {
		t.Fatal(err)
	}
	mf := pmu.NewMux(muxCfg, nil)
	rf, err := cpu.RunFast(p, cfg, mf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ri != rf {
		t.Fatalf("Result diverges: interp %+v fast %+v", ri, rf)
	}
	if mi.Rotations != mf.Rotations {
		t.Fatalf("rotations diverge: interp %d fast %d", mi.Rotations, mf.Rotations)
	}
	ci, cf := mi.Finish(ri.Cycles), mf.Finish(rf.Cycles)
	if err := diffCounts(ci, cf); err != nil {
		t.Fatal(err)
	}
	if mi.Rotations == 0 {
		t.Fatal("contended round-robin mux never rotated")
	}
	// Ground truth against the simulator's own totals.
	want := map[pmu.Event]uint64{
		pmu.EvInstRetired: ri.Instructions,
		pmu.EvUopsRetired: ri.Uops,
		pmu.EvBrTaken:     ri.TakenBranches,
		pmu.EvCondBr:      ri.CondBranches,
		pmu.EvBrMispred:   ri.Mispredicts,
	}
	for _, c := range ci {
		if w, ok := want[c.Event]; ok && c.Exact != w {
			t.Errorf("%s exact = %d, want %d", c.Event, c.Exact, w)
		}
		if c.Raw > c.Exact {
			t.Errorf("%s raw %d exceeds exact %d", c.Event, c.Raw, c.Exact)
		}
		if c.RunningCycles > c.EnabledCycles {
			t.Errorf("%s running %d exceeds enabled %d", c.Event, c.RunningCycles, c.EnabledCycles)
		}
	}
}

// TestMuxUncontended: a request list within the budget never rotates,
// runs every event for the whole run, and scales to the exact count.
func TestMuxUncontended(t *testing.T) {
	evs := synthStream(2000)
	final := evs[len(evs)-1].Cycle
	m := pmu.NewMux(pmu.MuxConfig{
		Events:            []pmu.Event{pmu.EvInstRetired, pmu.EvLoad, pmu.EvBrTaken},
		GenCounters:       2,
		FixedCounterFree:  true,
		MaxCyclesPerInstr: synthMaxCycles,
	}, nil)
	if m.Contended() {
		t.Fatal("fitting request list reported contended")
	}
	if h := m.FastHeadroom(); h != 1<<40 {
		t.Fatalf("uncontended headroom = %d, want unlimited", h)
	}
	muxReplayDirect(m, evs)
	for _, c := range m.Finish(final) {
		if m.Rotations != 0 {
			t.Fatalf("uncontended mux rotated %d times", m.Rotations)
		}
		if c.RunningCycles != c.EnabledCycles {
			t.Errorf("%s running %d != enabled %d", c.Event, c.RunningCycles, c.EnabledCycles)
		}
		if c.Raw != c.Exact {
			t.Errorf("%s raw %d != exact %d", c.Event, c.Raw, c.Exact)
		}
		if e := c.RelError(); e != 0 {
			t.Errorf("%s relative error = %g, want 0", c.Event, e)
		}
	}
}

// TestMuxPriorityStarvation: under the priority policy the events that
// fit keep exact counts and the overflow events never run.
func TestMuxPriorityStarvation(t *testing.T) {
	evs := synthStream(2000)
	final := evs[len(evs)-1].Cycle
	m := pmu.NewMux(pmu.MuxConfig{
		Events:            []pmu.Event{pmu.EvLoad, pmu.EvStore, pmu.EvBrTaken, pmu.EvCondBr},
		GenCounters:       2,
		Policy:            pmu.MuxPriority,
		TimesliceCycles:   100,
		MaxCyclesPerInstr: synthMaxCycles,
	}, nil)
	if h := m.FastHeadroom(); h != 1<<40 {
		t.Fatalf("priority policy costs fast-path headroom: %d", h)
	}
	muxReplayDirect(m, evs)
	counts := m.Finish(final)
	for i, c := range counts {
		if i < 2 {
			if c.Raw != c.Exact || c.RelError() != 0 {
				t.Errorf("scheduled %s: raw %d exact %d err %g", c.Event, c.Raw, c.Exact, c.RelError())
			}
			continue
		}
		if c.Raw != 0 || c.RunningCycles != 0 || c.Scaled != 0 {
			t.Errorf("starved %s counted: %+v", c.Event, c)
		}
		if c.Exact == 0 {
			t.Errorf("starved %s has no ground truth to compare against", c.Event)
		}
		if e := c.RelError(); e != 1 {
			t.Errorf("starved %s relative error = %g, want 1", c.Event, e)
		}
	}
}

// TestMuxFixedCounterRule: only EvInstRetired can ride the fixed counter.
func TestMuxFixedCounterRule(t *testing.T) {
	evs := synthStream(500)
	final := evs[len(evs)-1].Cycle

	// inst_retired + one general counter's worth of loads: both fit only
	// because inst_retired takes the fixed counter.
	m := pmu.NewMux(pmu.MuxConfig{
		Events:            []pmu.Event{pmu.EvLoad, pmu.EvInstRetired},
		GenCounters:       1,
		FixedCounterFree:  true,
		MaxCyclesPerInstr: synthMaxCycles,
	}, nil)
	if m.Contended() {
		t.Fatal("fixed counter not used for inst_retired")
	}
	muxReplayDirect(m, evs)
	for _, c := range m.Finish(final) {
		if c.Raw != c.Exact {
			t.Errorf("%s raw %d != exact %d", c.Event, c.Raw, c.Exact)
		}
	}

	// Two non-inst events with one general counter + a free fixed
	// counter: the fixed counter cannot host them, so the mux rotates.
	m2 := pmu.NewMux(pmu.MuxConfig{
		Events:            []pmu.Event{pmu.EvLoad, pmu.EvStore},
		GenCounters:       1,
		FixedCounterFree:  true,
		TimesliceCycles:   100,
		MaxCyclesPerInstr: synthMaxCycles,
	}, nil)
	if !m2.Contended() {
		t.Fatal("fixed counter wrongly hosted a non-inst_retired event")
	}
}

// TestMuxHeadroomNearDeadline pins the deadline arithmetic: the grant
// never reaches the rotation deadline.
func TestMuxHeadroomNearDeadline(t *testing.T) {
	m := pmu.NewMux(pmu.MuxConfig{
		Events:            muxMenu()[:4],
		GenCounters:       1,
		TimesliceCycles:   1000,
		MaxCyclesPerInstr: 10,
	}, nil)
	// estCycle 0, deadline 1000: grant is (1000-0-1)/10 = 99.
	if h := m.FastHeadroom(); h != 99 {
		t.Fatalf("fresh grant = %d, want 99", h)
	}
	// A retirement at cycle 995 puts the clock within one worst-case
	// instruction of the deadline: grant 0.
	m.OnRetire(cpu.RetireEvent{Idx: 1, Cycle: 995, Seq: 1, Uops: 1})
	if h := m.FastHeadroom(); h != 0 {
		t.Fatalf("near-deadline grant = %d, want 0", h)
	}
	// Crossing the deadline rotates and opens a fresh timeslice.
	m.OnRetire(cpu.RetireEvent{Idx: 2, Cycle: 1005, Seq: 2, Uops: 1})
	if m.Rotations != 1 {
		t.Fatalf("rotations = %d, want 1", m.Rotations)
	}
	if h := m.FastHeadroom(); h != 99 {
		t.Fatalf("post-rotation grant = %d, want 99", h)
	}
}

// TestMuxValidation pins the constructor and Finish guard rails.
func TestMuxValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		})
	}
	expectPanic("no-events", func() {
		pmu.NewMux(pmu.MuxConfig{GenCounters: 4, MaxCyclesPerInstr: 10}, nil)
	})
	expectPanic("no-counters", func() {
		pmu.NewMux(pmu.MuxConfig{Events: muxMenu()[:2], MaxCyclesPerInstr: 10}, nil)
	})
	expectPanic("no-cycle-bound", func() {
		pmu.NewMux(pmu.MuxConfig{Events: muxMenu()[:2], GenCounters: 4}, nil)
	})
	expectPanic("double-finish", func() {
		m := pmu.NewMux(pmu.MuxConfig{Events: muxMenu()[:2], GenCounters: 4, MaxCyclesPerInstr: 10}, nil)
		m.Finish(100)
		m.Finish(100)
	})
}

// TestEventParsing pins the -events flag round trip.
func TestEventParsing(t *testing.T) {
	for e := pmu.Event(0); e < pmu.Event(pmu.NumEvents); e++ {
		got, err := pmu.EventByName(e.String())
		if err != nil || got != e {
			t.Errorf("EventByName(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := pmu.EventByName("cycles"); err == nil {
		t.Error("unknown event accepted")
	}
	list, err := pmu.ParseEventList("inst_retired, load ,br_taken")
	if err != nil || len(list) != 3 || list[1] != pmu.EvLoad {
		t.Errorf("ParseEventList = %v, %v", list, err)
	}
	if s := pmu.EventListString(list); s != "inst_retired,load,br_taken" {
		t.Errorf("EventListString = %q", s)
	}
	if _, err := pmu.ParseEventList("load,nope"); err == nil {
		t.Error("bad list accepted")
	}
	if l, err := pmu.ParseEventList(""); err != nil || l != nil {
		t.Errorf("empty list = %v, %v", l, err)
	}
}
