// Package pmu models the Performance Monitoring Unit of the simulated
// machines: event counters, counter-overflow interrupts (PMIs) with skid,
// the Intel precise mechanisms (PEBS and the Ivy Bridge precisely-
// distributed PDIR flavor), AMD Instruction Based Sampling (IBS), and the
// Last Branch Record (LBR) facility.
//
// The package deliberately models the *causes* of sampling inaccuracy the
// paper identifies rather than injecting error distributions:
//
//   - Imprecise events: the PMI is delivered SkidCycles after the
//     triggering instruction retires, and the sampled IP is whatever
//     instruction is at the head of the retirement stream at delivery
//     time. Long-latency instructions occupy the head for many cycles, so
//     they soak up samples (the shadow/skid biases of §3.1).
//   - PEBS: overflow arms the facility; the hardware captures the next
//     event occurrence that retires in a *later* cycle (occurrences in the
//     same retirement burst cannot be captured), reproducing the
//     "distribution of samples is not guaranteed" caveat of Table 3. The
//     record carries the next-instruction IP (the infamous IP+1).
//   - PDIR (INST_RETIRED.PREC_DIST): captures exactly the Nth event with
//     no burst bias; the record is still IP+1.
//   - IBS: counts uops, tags the instruction containing the overflowing
//     uop, and reports its exact IP. Its 4-LSB hardware randomization
//     overwrites the low bits of the period — destroying the primality of
//     any software-chosen period.
//   - LBR: a ring of the last N taken-branch (source, target) pairs,
//     snapshotted into the sample record on demand.
package pmu

import (
	"fmt"
	"strings"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
	"pmutrust/internal/stats"
	"pmutrust/internal/telemetry"
)

// Event selects what a sampling counter counts.
type Event uint8

const (
	// EvInstRetired counts retired instructions
	// (INST_RETIRED.ANY / INST_RETIRED.ALL / RETIRED_INSTRUCTIONS).
	EvInstRetired Event = iota
	// EvUopsRetired counts retired micro-ops (AMD RETIRED_UOPS; the basis
	// of IBS op sampling).
	EvUopsRetired
	// EvBrTaken counts retired taken branches
	// (BR_INST_RETIRED.NEAR_TAKEN / BR_INST_EXEC:TAKEN).
	EvBrTaken
	// EvCondBr counts retired conditional branches, taken or not
	// (BR_INST_RETIRED.COND).
	EvCondBr
	// EvBrMispred counts mispredicted conditional branches
	// (BR_MISP_RETIRED.ALL_BRANCHES).
	EvBrMispred
	// EvLoad counts retired load instructions (MEM_UOPS_RETIRED.ALL_LOADS).
	EvLoad
	// EvStore counts retired store instructions
	// (MEM_UOPS_RETIRED.ALL_STORES).
	EvStore
	// EvFPOp counts retired floating-point arithmetic instructions
	// (FP_COMP_OPS_EXE / RETIRED_SSE_OPS).
	EvFPOp
	// EvCall counts retired near calls (BR_INST_RETIRED.NEAR_CALL).
	EvCall
	// EvRet counts retired near returns (BR_INST_RETIRED.NEAR_RETURN).
	EvRet

	numEvents
)

// NumEvents is the number of defined countable events.
const NumEvents = int(numEvents)

// String returns the generic event name.
func (e Event) String() string {
	switch e {
	case EvInstRetired:
		return "inst_retired"
	case EvUopsRetired:
		return "uops_retired"
	case EvBrTaken:
		return "br_taken"
	case EvCondBr:
		return "cond_br"
	case EvBrMispred:
		return "br_mispred"
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvFPOp:
		return "fp_op"
	case EvCall:
		return "call"
	case EvRet:
		return "ret"
	default:
		return "unknown"
	}
}

// EventByName parses an event name as spelled by String — the format of
// pmubench's and wlgen's -events flags.
func EventByName(name string) (Event, error) {
	for e := Event(0); e < Event(numEvents); e++ {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("pmu: unknown event %q", name)
}

// ParseEventList parses a comma-separated event list ("inst_retired,load,
// br_taken"). An empty string yields an empty list.
func ParseEventList(s string) ([]Event, error) {
	if s == "" {
		return nil, nil
	}
	var out []Event
	for _, name := range strings.Split(s, ",") {
		e, err := EventByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// EventListString renders an event list in ParseEventList's format.
func EventListString(events []Event) string {
	names := make([]string, len(events))
	for i, e := range events {
		names[i] = e.String()
	}
	return strings.Join(names, ",")
}

// Precision selects the sample-capture mechanism.
type Precision uint8

const (
	// Imprecise is plain counter overflow + interrupt: the sampled IP is
	// subject to skid and shadow.
	Imprecise Precision = iota
	// PrecisePEBS is Intel Precise Event Based Sampling: arm on
	// overflow, capture the next eligible event occurrence, report IP+1.
	PrecisePEBS
	// PreciseDist is the Ivy Bridge precisely-distributed PEBS flavor
	// (PDIR): captures exactly the overflowing occurrence, reports IP+1.
	PreciseDist
	// PreciseIBS is AMD Instruction Based Sampling: uop-based tagging
	// with an exact reported IP.
	PreciseIBS
)

// String returns the mechanism name.
func (p Precision) String() string {
	switch p {
	case Imprecise:
		return "imprecise"
	case PrecisePEBS:
		return "pebs"
	case PreciseDist:
		return "pdir"
	case PreciseIBS:
		return "ibs"
	default:
		return "unknown"
	}
}

// RandMode selects sampling-period randomization.
type RandMode uint8

const (
	// RandNone reloads the same period every time.
	RandNone RandMode = iota
	// RandSoftware adds a zero-mean software jitter to every reload, as a
	// patched perf would (the paper notes mainline perf cannot).
	RandSoftware
	// RandHW4LSB is the AMD IBS hardware scheme: the low 4 bits of the
	// reload value are replaced with random bits. Note this rounds the
	// period down to a multiple of 16 first — a prime software period
	// does not survive it.
	RandHW4LSB
)

// String returns the mode name.
func (r RandMode) String() string {
	switch r {
	case RandNone:
		return "none"
	case RandSoftware:
		return "software"
	case RandHW4LSB:
		return "hw4lsb"
	default:
		return "unknown"
	}
}

// BranchRecord is one LBR entry: a retired taken branch from From to To
// (code indices).
type BranchRecord struct {
	From, To uint32
}

// Sample is one collected PMU sample.
type Sample struct {
	// IP is the instruction address (code index) a profiling tool would
	// attribute the sample to. Depending on the mechanism this may be the
	// skidded delivery address, the PEBS next-instruction IP, or the IBS
	// tagged instruction.
	IP uint32
	// TriggerIP is the ground-truth address of the instruction whose
	// retirement overflowed the counter. Only diagnostics and tests may
	// use it; profile construction must not (tools cannot see it).
	TriggerIP uint32
	// Cycle is the capture cycle.
	Cycle uint64
	// Seq is the dynamic instruction number at capture.
	Seq uint64
	// Period is the effective sampling period that led to this sample
	// (after randomization), in event units.
	Period uint64
	// LBR is the branch-record snapshot at capture, oldest first; nil if
	// the configuration does not capture LBR.
	LBR []BranchRecord
}

// Config programs one sampling counter.
type Config struct {
	// Event is the counted event.
	Event Event
	// Precision is the capture mechanism.
	Precision Precision
	// Period is the base sampling period in event units.
	Period uint64
	// Rand is the period randomization mode.
	Rand RandMode
	// RandAmp is the software-jitter amplitude (events); used only with
	// RandSoftware. Zero selects Period/8.
	RandAmp uint64
	// SkidCycles is the PMI delivery latency for Imprecise sampling.
	SkidCycles uint64
	// CaptureLBR snapshots the LBR stack into each sample.
	CaptureLBR bool
	// LBRDepth is the LBR stack depth when CaptureLBR is set.
	LBRDepth int
	// Seed seeds the period randomizer.
	Seed uint64
	// HWExactIP makes precise records carry the triggering instruction's
	// own IP instead of the next-instruction IP — the §6.2 hardware fix,
	// only present on the FutureGen machine model.
	HWExactIP bool
	// LBRContention models a second LBR consumer sharing the facility in
	// call-stack filtering mode (perf --call-graph lbr), per §6.2's
	// warning that the LBR is "a valuable single resource" and the IP+1
	// fix in hardware would "avoid collisions on LBRs ... with other
	// filtered collections such as call-stack mode". The value is the
	// fraction of samples whose LBR snapshot reflects the *other*
	// consumer's filtering (calls/returns only) instead of all taken
	// branches — useless, and silently wrong, for basic-block counting.
	LBRContention float64
	// FreqMode enables perf-style frequency mode: instead of a fixed
	// event period, the PMU retunes the period after every sample so
	// samples arrive roughly every TargetIntervalCycles. Mainline perf
	// defaults to this ("an architectural event is typically set to
	// capture a sample every ~1 millisecond", §3.4) — and it trades the
	// period-choice problem for a time-uniform sample distribution,
	// which measures cycles, not instruction counts.
	FreqMode bool
	// TargetIntervalCycles is the frequency-mode sampling interval target
	// (cycles between samples). Zero selects Period (assumes IPC ≈ 1).
	TargetIntervalCycles uint64
}

// PMU is the monitor implementation that samples a run. It implements
// cpu.Monitor.
type PMU struct {
	cfg     Config
	rng     *stats.RNG
	lbr     lbrRing
	csRing  lbrRing // call-stack-filtered ring for the contention model
	samples []Sample
	arena   lbrArena // backing storage for the samples' LBR snapshots

	counter    uint64
	effPeriod  uint64
	basePeriod uint64 // mutable in frequency mode
	lastSample uint64 // cycle of the previous sample (frequency mode)
	armed      bool   // PEBS armed, waiting for an eligible occurrence
	armCycle   uint64
	pendingPMI bool // imprecise PMI scheduled
	deliverAt  uint64
	trigIP     uint32

	pendingIBS bool // IBS tag displaced by hardware randomization

	// Totals (counting mode runs alongside sampling, like a real PMU's
	// fixed counters).
	TotalEvents uint64
	Overflows   uint64
	DroppedPMIs uint64

	// tele is the run's telemetry counter block. The PMU owns it; a
	// wrapping Mux or scheduler task shares the same block (see
	// cpu.EngineObserver), so one run publishes one set of counters no
	// matter how deep the monitor chain is. Telemetry observes, never
	// perturbs: nothing the unit computes reads these back.
	tele telemetry.EngineCounters
}

// EngineCounters implements cpu.EngineObserver: the per-run telemetry
// counter block shared along the monitor chain.
func (p *PMU) EngineCounters() *telemetry.EngineCounters { return &p.tele }

// New creates a PMU for the given configuration.
func New(cfg Config) *PMU {
	if cfg.Period == 0 {
		panic("pmu: zero sampling period")
	}
	if cfg.RandAmp == 0 {
		cfg.RandAmp = cfg.Period / 8
	}
	if cfg.LBRDepth <= 0 {
		cfg.LBRDepth = 16
	}
	if cfg.FreqMode && cfg.TargetIntervalCycles == 0 {
		cfg.TargetIntervalCycles = cfg.Period
	}
	p := &PMU{cfg: cfg, rng: stats.NewRNG(cfg.Seed ^ 0x9a11ce5eed), basePeriod: cfg.Period}
	p.lbr.init(cfg.LBRDepth)
	p.csRing.init(cfg.LBRDepth)
	p.effPeriod = p.nextPeriod()
	return p
}

// Samples returns the collected samples.
func (p *PMU) Samples() []Sample { return p.samples }

// Config returns the active configuration.
func (p *PMU) Config() Config { return p.cfg }

// nextPeriod applies the randomization policy to produce the next reload
// value.
func (p *PMU) nextPeriod() uint64 {
	base := p.basePeriod
	switch p.cfg.Rand {
	case RandNone:
		return base
	case RandSoftware:
		j := p.rng.Jitter(p.cfg.RandAmp)
		v := int64(base) + j
		if v < 1 {
			v = 1
		}
		return uint64(v)
	case RandHW4LSB:
		return (base &^ 15) | p.rng.Uint64n(16)
	default:
		return base
	}
}

// units returns how many event units ev contributes to the counter.
func (p *PMU) units(ev cpu.RetireEvent) uint64 {
	return EventUnits(p.cfg.Event, ev)
}

// EventUnits returns how many units of event e one retirement contributes
// — the single definition of what each countable event counts, shared by
// the sampling PMU and the multiplexed counters (Mux).
func EventUnits(e Event, ev cpu.RetireEvent) uint64 {
	switch e {
	case EvInstRetired:
		return 1
	case EvUopsRetired:
		return uint64(ev.Uops)
	case EvBrTaken:
		if ev.Taken {
			return 1
		}
	case EvCondBr:
		if ev.Op.IsCondBranch() {
			return 1
		}
	case EvBrMispred:
		if ev.Mispred {
			return 1
		}
	case EvLoad:
		if ev.Op == isa.OpLoad {
			return 1
		}
	case EvStore:
		if ev.Op == isa.OpStore {
			return 1
		}
	case EvFPOp:
		if c := ev.Op.ClassOf(); c == isa.ClassFP || c == isa.ClassFPDiv {
			return 1
		}
	case EvCall:
		if ev.Op.IsCall() {
			return 1
		}
	case EvRet:
		if ev.Op.IsRet() {
			return 1
		}
	}
	return 0
}

// EventUnitsBulk returns how many units of event e a whole stride
// contributes, from the engine's per-class totals. It must agree with
// EventUnits summed over the stride; the differential harness enforces
// that through the Mux's exact counters.
func EventUnitsBulk(e Event, c cpu.BulkCounts) uint64 {
	switch e {
	case EvInstRetired:
		return c.Instrs
	case EvUopsRetired:
		return c.Uops
	case EvBrTaken:
		return c.TakenBranches
	case EvCondBr:
		return c.CondBranches
	case EvBrMispred:
		return c.Mispredicts
	case EvLoad:
		return c.Loads
	case EvStore:
		return c.Stores
	case EvFPOp:
		return c.FPOps
	case EvCall:
		return c.Calls
	case EvRet:
		return c.Rets
	default:
		return 0
	}
}

// OnRetire implements cpu.Monitor.
func (p *PMU) OnRetire(ev cpu.RetireEvent) {
	// Per-instruction delivery is already the slow path, so event-mode
	// accounting lives here, not in the engine loop.
	p.tele.EventInstrs++

	// LBR updates first: a retiring taken branch is in the stack by the
	// time any PMI for it could be taken.
	if ev.Taken && p.cfg.CaptureLBR {
		p.lbr.push(BranchRecord{From: ev.Idx, To: ev.Target})
		if p.cfg.LBRContention > 0 {
			// The competing consumer runs the facility in call-stack
			// mode: calls push, returns pop, other branches are filtered
			// out.
			switch {
			case ev.Op.IsCall():
				p.csRing.push(BranchRecord{From: ev.Idx, To: ev.Target})
			case ev.Op.IsRet():
				p.csRing.pop()
			}
		}
	}

	// Deliver a pending imprecise PMI: the sampled IP is the oldest
	// not-yet-retired instruction at delivery time, i.e. the first
	// instruction whose retirement cycle reaches the delivery cycle.
	if p.pendingPMI && ev.Cycle >= p.deliverAt {
		p.record(ev.Idx, ev, p.effPeriodForSample())
		p.pendingPMI = false
	}

	// Deliver a pending IBS tag: under hardware period randomization the
	// counter expires mid dispatch-window and the tagged uop comes from
	// the following window, displacing the reported instruction forward
	// (see Config.SkidCycles doc and DESIGN.md on the AMD randomization
	// finding).
	if p.pendingIBS && ev.Cycle > p.armCycle {
		p.record(ev.Idx, ev, p.effPeriodForSample())
		p.pendingIBS = false
	}

	// PEBS capture: armed, and this is an eligible occurrence (an event
	// unit retiring in a cycle strictly after arming — occurrences inside
	// the arming burst are not capturable).
	u := p.units(ev)
	if p.armed && u > 0 && ev.Cycle > p.armCycle {
		p.capturePrecise(ev)
		p.armed = false
	}

	if u == 0 {
		return
	}
	p.TotalEvents += u
	p.counter += u
	if p.counter < p.effPeriod {
		return
	}

	// Counter overflow at this instruction.
	p.Overflows++
	p.counter -= p.effPeriod
	p.trigIP = ev.Idx
	switch p.cfg.Precision {
	case Imprecise:
		if p.pendingPMI {
			// Previous PMI not yet delivered; the new overflow is lost.
			p.DroppedPMIs++
		} else {
			p.pendingPMI = true
			// Interrupt delivery latency is not a constant on real
			// hardware: it depends on interruptibility windows and
			// pipeline drain state. Model it as the machine skid plus a
			// uniform jitter of up to a quarter of the skid.
			jitter := uint64(0)
			if j := p.cfg.SkidCycles / 4; j > 0 {
				jitter = p.rng.Uint64n(j + 1)
			}
			p.deliverAt = ev.Cycle + p.cfg.SkidCycles + jitter
		}
	case PrecisePEBS:
		if p.armed {
			p.DroppedPMIs++
		} else {
			p.armed = true
			p.armCycle = ev.Cycle
		}
	case PreciseDist:
		// PDIR: capture exactly this occurrence.
		p.capturePrecise(ev)
	case PreciseIBS:
		if p.cfg.Rand == RandHW4LSB {
			// With hardware period randomization the counter expires
			// untethered from instruction boundaries, so the tag attaches
			// to a uop of the next dispatch/retire group; like PEBS
			// arming, the capture is biased toward the heads of
			// retirement bursts (post-stall instructions). This is the
			// mechanism behind the paper's observation that AMD results
			// worsen when the built-in randomization is used (§5.1); see
			// DESIGN.md for the modelling rationale. Unlike PEBS, IBS
			// reports the exact IP of the tagged instruction.
			if p.pendingIBS {
				p.DroppedPMIs++
			} else {
				p.pendingIBS = true
				p.armCycle = ev.Cycle
			}
		} else {
			// IBS proper: the instruction containing the overflowing uop
			// is tagged and its exact IP is reported.
			p.record(ev.Idx, ev, p.effPeriodForSample())
		}
	}
	p.effPeriod = p.nextPeriod()
}

// The PMU implements cpu.FastMonitor: the fast engine advances whole basic
// blocks between PMU-relevant boundaries and falls back to per-instruction
// OnRetire delivery exactly when the PMU says so (FastHeadroom == 0).
var _ cpu.FastMonitor = (*PMU)(nil)

// FastHeadroom implements cpu.FastMonitor. It returns the number of
// instructions guaranteed to retire without any observable PMU action: no
// counter overflow, no sample capture, no interrupt bookkeeping, no RNG
// draw. The grant is zero whenever the unit is in a stateful window that
// must observe the event stream instruction by instruction — a pending
// imprecise PMI riding out its skid, an armed PEBS capture window, a
// displaced IBS tag — or when the counter is within one event of overflow
// (which under HW 4-LSB randomization can mean an entire grant of zero:
// tiny randomized reload values keep the unit permanently near a
// boundary).
//
// For uop-counted events the unit budget is converted to instructions by
// dividing by isa.MaxUops; every other countable event contributes at
// most one unit per instruction, so the unit budget is already a safe
// instruction count.
// Each zero grant increments exactly one telemetry fallback bucket —
// the first stateful window that refused, checked in delivery order —
// so the buckets always sum to the total number of fallback events.
func (p *PMU) FastHeadroom() uint64 {
	if p.pendingPMI {
		p.tele.Fallbacks[telemetry.FallbackOverflow]++
		return 0
	}
	if p.pendingIBS {
		p.tele.Fallbacks[telemetry.FallbackIBSTag]++
		return 0
	}
	if p.armed {
		p.tele.Fallbacks[telemetry.FallbackArmedPEBS]++
		return 0
	}
	if p.counter+1 >= p.effPeriod {
		p.countNearOverflow()
		return 0
	}
	avail := p.effPeriod - p.counter - 1
	if p.cfg.Event == EvUopsRetired {
		if g := avail / isa.MaxUops; g > 0 {
			return g
		}
		// The unit budget exists but does not cover even one worst-case
		// instruction: still an overflow-adjacent refusal.
		p.countNearOverflow()
		return 0
	}
	return avail
}

// countNearOverflow attributes a zero grant caused by the counter sitting
// within one (worst-case) instruction of its reload value. Under IBS
// hardware 4-LSB randomization this is its own bucket: tiny randomized
// reload values keep the unit chronically near a boundary, the dominant
// fallback cause on the AMD model.
func (p *PMU) countNearOverflow() {
	if p.cfg.Rand == RandHW4LSB {
		p.tele.Fallbacks[telemetry.FallbackHW4LSB]++
	} else {
		p.tele.Fallbacks[telemetry.FallbackOverflow]++
	}
}

// WantBranches implements cpu.FastMonitor: LBR-capturing configurations
// must see every retired taken branch even in the middle of a stride,
// because the ring's contents at the next sample depend on all of them.
func (p *PMU) WantBranches() bool { return p.cfg.CaptureLBR }

// BulkClasses implements cpu.BulkClassHinter: BulkRetire reads exactly
// the configured event's BulkCounts field, so the engine may zero every
// other class. With a Result-shaped event and no LBR capture this is what
// lets RunFast select its lean loop for the sampling PMU.
func (p *PMU) BulkClasses() cpu.BulkClass { return bulkClassOf(p.cfg.Event) }

// bulkClassOf maps a countable event to the BulkCounts class its
// EventUnitsBulk accessor reads. Unknown events demand every class, the
// conservative answer.
func bulkClassOf(e Event) cpu.BulkClass {
	switch e {
	case EvInstRetired:
		return cpu.BulkInstrs
	case EvUopsRetired:
		return cpu.BulkUops
	case EvBrTaken:
		return cpu.BulkTakenBranches
	case EvCondBr:
		return cpu.BulkCondBranches
	case EvBrMispred:
		return cpu.BulkMispredicts
	case EvLoad:
		return cpu.BulkLoads
	case EvStore:
		return cpu.BulkStores
	case EvFPOp:
		return cpu.BulkFPOps
	case EvCall:
		return cpu.BulkCalls
	case EvRet:
		return cpu.BulkRets
	}
	return cpu.BulkAll
}

// OnFastBranch implements cpu.FastMonitor: the stride-mode half of the LBR
// update in OnRetire.
func (p *PMU) OnFastBranch(from, to uint32, op isa.Op) {
	p.lbr.push(BranchRecord{From: from, To: to})
	if p.cfg.LBRContention > 0 {
		switch {
		case op.IsCall():
			p.csRing.push(BranchRecord{From: from, To: to})
		case op.IsRet():
			p.csRing.pop()
		}
	}
}

// BulkRetire implements cpu.FastMonitor: account a stride the engine
// retired inside the last FastHeadroom grant. By the grant's construction
// the counter cannot reach the reload value, so no overflow logic runs
// here; the invariant is asserted because a violation means silently
// diverging sample streams.
func (p *PMU) BulkRetire(c cpu.BulkCounts) {
	p.tele.Strides++
	p.tele.StrideInstrs += c.Instrs
	u := EventUnitsBulk(p.cfg.Event, c)
	p.TotalEvents += u
	p.counter += u
	if p.counter >= p.effPeriod {
		panic("pmu: BulkRetire overran the sampling period (fast-engine headroom contract violation)")
	}
}

// capturePrecise records a PEBS/PDIR sample for the captured occurrence
// ev. The record carries the next-instruction IP: the branch target when
// the captured instruction is a taken branch, the next sequential address
// otherwise. This is the IP+1 problem of Table 3.
func (p *PMU) capturePrecise(ev cpu.RetireEvent) {
	if p.cfg.HWExactIP {
		// §6.2 hardware fix: the record carries the captured
		// instruction's own IP.
		p.record(ev.Idx, ev, p.effPeriodForSample())
		return
	}
	var ip uint32
	if ev.Taken {
		ip = ev.Target
	} else {
		ip = ev.Idx + 1
	}
	p.record(ip, ev, p.effPeriodForSample())
}

// effPeriodForSample returns the period value to attach to a sample. For
// attribution purposes tools only know the *base* period (randomized
// reload values are invisible to them), so we report the base — which in
// frequency mode is the current feedback value, exactly what perf writes
// into each sample record.
func (p *PMU) effPeriodForSample() uint64 { return p.basePeriod }

func (p *PMU) record(ip uint32, ev cpu.RetireEvent, period uint64) {
	if p.cfg.FreqMode {
		p.retunePeriod(ev.Cycle)
	}
	s := Sample{
		IP:        ip,
		TriggerIP: p.trigIP,
		Cycle:     ev.Cycle,
		Seq:       ev.Seq,
		Period:    period,
	}
	if p.cfg.CaptureLBR {
		if p.cfg.LBRContention > 0 && p.rng.Float64() < p.cfg.LBRContention {
			// The other consumer owned the LBR when this PMI fired: the
			// snapshot holds call-stack-filtered records.
			s.LBR = p.csRing.snapshot(&p.arena)
		} else {
			s.LBR = p.lbr.snapshot(&p.arena)
		}
	}
	if p.samples == nil {
		// One run produces hundreds to thousands of samples; skipping the
		// small steps of append's growth ladder keeps steady-state
		// collection at a handful of allocations.
		p.samples = make([]Sample, 0, initialSampleCap)
	}
	p.samples = append(p.samples, s)
}

// retunePeriod implements the frequency-mode feedback loop, following the
// kernel's perf_adjust_period: after each sample, scale the period by the
// ratio of the target interval to the observed one, damped by averaging
// with the current period, and clamped to a sane range.
func (p *PMU) retunePeriod(cycle uint64) {
	interval := cycle - p.lastSample
	p.lastSample = cycle
	if interval == 0 {
		return
	}
	ideal := float64(p.basePeriod) * float64(p.cfg.TargetIntervalCycles) / float64(interval)
	next := uint64((float64(p.basePeriod) + ideal) / 2)
	const minPeriod = 16
	if next < minPeriod {
		next = minPeriod
	}
	if max := p.cfg.Period * 64; next > max {
		next = max
	}
	p.basePeriod = next
}

// EffectiveBasePeriod returns the current base period — constant in fixed
// mode, the converged feedback value in frequency mode.
func (p *PMU) EffectiveBasePeriod() uint64 { return p.basePeriod }

// Preempt models a context switch-out: the OS deschedules the task while
// the unit is mid-capture. Any in-flight delivery — an imprecise PMI
// riding out its skid, an armed PEBS window, a displaced IBS tag — cannot
// complete against this task's stream; the interrupt fires after the
// switch, against whatever runs next (the multi-tenant scheduler turns
// these into the successor tenant's foreign samples). The pending state
// is cleared, the lost delivery is counted as a dropped PMI, and the
// return value reports whether one was in flight. Counter contents
// survive (perf saves and restores them per task).
//
// The caller must invoke this only at a fast-path fallback point (the
// scheduler's deadlines are, exactly like mux rotations), so both engines
// observe the preemption at the same retirement.
func (p *PMU) Preempt() bool {
	drained := p.pendingPMI || p.pendingIBS || p.armed
	if drained {
		p.DroppedPMIs++
	}
	p.pendingPMI = false
	p.pendingIBS = false
	p.armed = false
	return drained
}

// SetSkidCycles repoints the imprecise-PMI delivery latency, used by the
// scheduler's migration mode when a task lands on a machine model with a
// different skid. It affects only overflows that happen after the call.
func (p *PMU) SetSkidCycles(skid uint64) { p.cfg.SkidCycles = skid }

// InjectKernelEvents models the switch-in tail of a context switch: perf
// restores the task's counters before the kernel path returns to user
// code, so the last stretch of kernel execution — instrs instructions of
// it — leaks into the task's counts. The counter advances by the kernel
// instruction mix's contribution to the configured event; overflows that
// land inside the kernel window deliver their PMI against kernel code,
// which a user-space profile never sees, so those samples are dropped
// (returned as drops) while the period reload sequence advances exactly
// as if they had been taken. No pending capture state is armed: the
// kernel window is over before user code resumes.
func (p *PMU) InjectKernelEvents(instrs uint64) (drops uint64) {
	u := KernelEventUnits(p.cfg.Event, instrs)
	if u == 0 {
		return 0
	}
	p.TotalEvents += u
	p.counter += u
	for p.counter >= p.effPeriod {
		p.counter -= p.effPeriod
		p.Overflows++
		drops++
		p.effPeriod = p.nextPeriod()
	}
	return drops
}

// KernelEventUnits returns how many units of event e a stretch of instrs
// kernel context-switch-path instructions contributes. The mix is a fixed
// characterization of scheduler/switch code — branchy integer code with
// plenty of memory traffic and no floating point — in units per 16
// instructions, applied with integer arithmetic so both engines and every
// tenant count the same leak deterministically.
func KernelEventUnits(e Event, instrs uint64) uint64 {
	var per16 uint64
	switch e {
	case EvInstRetired:
		per16 = 16
	case EvUopsRetired:
		per16 = 20
	case EvBrTaken:
		per16 = 3
	case EvCondBr:
		per16 = 4
	case EvBrMispred:
		per16 = 1
	case EvLoad:
		per16 = 5
	case EvStore:
		per16 = 4
	case EvCall:
		per16 = 1
	case EvRet:
		per16 = 1
	}
	return instrs * per16 / 16
}

// initialSampleCap seeds the sample buffer's capacity on the first
// recorded sample (a run that samples nothing allocates nothing).
const initialSampleCap = 512

// lbrArena hands out LBR snapshot slices carved from large shared
// chunks, so a collection run costs one allocation per ~lbrArenaChunk
// snapshot entries instead of one per sample. Samples retain their
// snapshots beyond the run (they escape through Run.Samples), which
// rules out sync.Pool recycling — but the snapshots are immutable once
// taken, so packing them into shared chunks is safe. Every handed-out
// slice has its capacity clipped to its length, so even an (incorrect)
// append by a consumer cannot clobber a neighboring snapshot.
type lbrArena struct {
	chunk []BranchRecord
}

// lbrArenaChunk is the arena chunk size in entries (~32 KiB chunks).
const lbrArenaChunk = 4096

// alloc returns a zeroed slice of n records backed by the arena. n = 0
// returns a non-nil empty slice: "captured, empty" must stay distinct
// from the nil "not captured" in every observable (JSON, DiffRuns).
func (a *lbrArena) alloc(n int) []BranchRecord {
	if n == 0 {
		return []BranchRecord{}
	}
	if len(a.chunk)+n > cap(a.chunk) {
		size := lbrArenaChunk
		if n > size {
			size = n
		}
		a.chunk = make([]BranchRecord, 0, size)
	}
	start := len(a.chunk)
	a.chunk = a.chunk[:start+n]
	return a.chunk[start : start+n : start+n]
}

// lbrRing is the Last Branch Record stack: a ring buffer overwritten by
// every retiring taken branch.
type lbrRing struct {
	entries []BranchRecord
	pos     int
	filled  int
}

func (l *lbrRing) init(depth int) {
	l.entries = make([]BranchRecord, depth)
	l.pos = 0
	l.filled = 0
}

func (l *lbrRing) push(r BranchRecord) {
	l.entries[l.pos] = r
	l.pos = (l.pos + 1) % len(l.entries)
	if l.filled < len(l.entries) {
		l.filled++
	}
}

// pop removes the newest entry (call-stack mode return handling).
func (l *lbrRing) pop() {
	if l.filled == 0 {
		return
	}
	l.pos--
	if l.pos < 0 {
		l.pos += len(l.entries)
	}
	l.filled--
}

// snapshot returns the stack contents, oldest branch first, in storage
// carved from the arena.
func (l *lbrRing) snapshot(a *lbrArena) []BranchRecord {
	out := a.alloc(l.filled)
	start := l.pos - l.filled
	if start < 0 {
		start += len(l.entries)
	}
	for i := 0; i < l.filled; i++ {
		out[i] = l.entries[(start+i)%len(l.entries)]
	}
	return out
}
