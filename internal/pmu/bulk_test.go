package pmu_test

// Boundary tests for the bulk-advance (cpu.FastMonitor) API: the PMU's
// FastHeadroom/BulkRetire/OnFastBranch protocol must leave the unit in a
// state indistinguishable from feeding it the same retirement stream one
// OnRetire at a time, no matter how the stream is chopped into strides.
// The cases target the edges the fast engine can get wrong: overflow
// landing exactly on a stride edge, overflow demanded mid-stride, an
// armed PEBS window straddling strides, and HW 4-LSB randomization
// dropping tiny reload values into what would have been a long stride.

import (
	"fmt"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
	"pmutrust/internal/pmu"
)

// synthStream builds a deterministic synthetic retirement stream: a
// mixture of single-uop ALU ops, multi-uop divs, stores and taken
// branches, with stall/burst cycle patterns (several instructions retiring
// in one cycle, then a gap) so PEBS "later cycle" arming and PMI delivery
// windows get exercised.
func synthStream(n int) []cpu.RetireEvent {
	evs := make([]cpu.RetireEvent, n)
	cycle := uint64(10)
	for i := 0; i < n; i++ {
		op := isa.OpAdd
		uops := uint8(1)
		taken := false
		target := uint32(0)
		switch i % 11 {
		case 3:
			op = isa.OpDiv
			uops = 4
		case 5:
			op = isa.OpStore
			uops = 2
		case 7:
			op = isa.OpJnz
			taken = i%22 == 7
			target = uint32((i * 13) % 97)
		case 9:
			op = isa.OpCall
			uops = 2
			taken = true
			target = uint32((i * 7) % 97)
		case 10:
			op = isa.OpRet
			taken = true
			target = uint32((i * 3) % 97)
		}
		// Burst pattern: groups of up to 4 share a cycle, then the clock
		// jumps (a long-latency shadow every 23 instructions).
		if i%4 == 0 {
			cycle += 2
		}
		if i%23 == 0 {
			cycle += 40
		}
		evs[i] = cpu.RetireEvent{
			Idx:    uint32((i * 5) % 97),
			Cycle:  cycle,
			Seq:    uint64(i + 1),
			Op:     op,
			Uops:   uops,
			Taken:  taken,
			Target: target,
		}
	}
	return evs
}

// accumulate folds one retirement into a stride's BulkCounts the way the
// fast engine's stride loop does — the replay-side half of the bulk
// contract. The mux tests reuse it to chop synthetic streams.
func accumulate(c *cpu.BulkCounts, ev cpu.RetireEvent) {
	c.Instrs++
	c.Uops += uint64(ev.Uops)
	if ev.Taken {
		c.TakenBranches++
	}
	if ev.Op.IsCondBranch() {
		c.CondBranches++
	}
	if ev.Mispred {
		c.Mispredicts++
	}
	switch {
	case ev.Op == isa.OpLoad:
		c.Loads++
	case ev.Op == isa.OpStore:
		c.Stores++
	case ev.Op.ClassOf() == isa.ClassFP || ev.Op.ClassOf() == isa.ClassFPDiv:
		c.FPOps++
	case ev.Op.IsCall():
		c.Calls++
	case ev.Op.IsRet():
		c.Rets++
	}
}

// replayDirect feeds every event through OnRetire (the interpreter's
// view).
func replayDirect(u *pmu.PMU, evs []cpu.RetireEvent) {
	for _, ev := range evs {
		u.OnRetire(ev)
	}
}

// replayBulk drives the engine protocol: take FastHeadroom-bounded strides
// of at most chunk events through BulkRetire (+ OnFastBranch for taken
// branches when the unit wants them), and fall back to OnRetire whenever
// the headroom is zero.
func replayBulk(t *testing.T, u *pmu.PMU, evs []cpu.RetireEvent, chunk int) {
	t.Helper()
	wantBr := u.WantBranches()
	i := 0
	for i < len(evs) {
		h := u.FastHeadroom()
		if h == 0 {
			u.OnRetire(evs[i])
			i++
			continue
		}
		n := int(h)
		if n > chunk {
			n = chunk
		}
		if n > len(evs)-i {
			n = len(evs) - i
		}
		var c cpu.BulkCounts
		for j := 0; j < n; j++ {
			ev := evs[i+j]
			accumulate(&c, ev)
			if ev.Taken && wantBr {
				u.OnFastBranch(ev.Idx, ev.Target, ev.Op)
			}
		}
		u.BulkRetire(c)
		i += n
	}
}

// diffUnits compares two PMUs' complete observable state.
func diffUnits(a, b *pmu.PMU) error {
	if a.TotalEvents != b.TotalEvents || a.Overflows != b.Overflows || a.DroppedPMIs != b.DroppedPMIs {
		return fmt.Errorf("totals diverge: direct tot=%d ovf=%d drop=%d, bulk tot=%d ovf=%d drop=%d",
			a.TotalEvents, a.Overflows, a.DroppedPMIs, b.TotalEvents, b.Overflows, b.DroppedPMIs)
	}
	sa, sb := a.Samples(), b.Samples()
	if len(sa) != len(sb) {
		return fmt.Errorf("sample count diverges: direct %d, bulk %d", len(sa), len(sb))
	}
	for i := range sa {
		x, y := sa[i], sb[i]
		if x.IP != y.IP || x.TriggerIP != y.TriggerIP || x.Cycle != y.Cycle ||
			x.Seq != y.Seq || x.Period != y.Period || len(x.LBR) != len(y.LBR) {
			return fmt.Errorf("sample %d diverges:\n  direct %+v\n  bulk   %+v", i, x, y)
		}
		for j := range x.LBR {
			if x.LBR[j] != y.LBR[j] {
				return fmt.Errorf("sample %d LBR[%d] diverges: %+v vs %+v", i, j, x.LBR[j], y.LBR[j])
			}
		}
	}
	return nil
}

// TestBulkBoundaries is the table: each case pins one boundary regime and
// replays the same stream both ways under several stride chops.
func TestBulkBoundaries(t *testing.T) {
	cases := []struct {
		name string
		cfg  pmu.Config
	}{
		{
			// Period 10 against chunk 9: with a fresh counter the headroom
			// is exactly 9, so the first stride ends one event before the
			// overflow — the overflow lands exactly on the stride edge and
			// must be taken in event mode.
			name: "overflow-on-stride-edge",
			cfg:  pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 10, Seed: 3},
		},
		{
			// Chunk larger than the period: the replayer keeps asking for
			// 64-event strides but headroom (at most 9) truncates each one
			// mid-chunk; every overflow is forced into event mode.
			name: "overflow-mid-block",
			cfg:  pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 10, Seed: 3},
		},
		{
			// PEBS: overflow arms the facility; the capture window (next
			// eligible event in a strictly later cycle) straddles stride
			// boundaries — headroom must stay 0 while armed.
			name: "armed-pebs-straddles-block",
			cfg:  pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PrecisePEBS, Period: 7, Seed: 5},
		},
		{
			// Imprecise: the pending PMI rides out the skid (plus RNG
			// jitter) across strides; dropped-PMI accounting must match.
			name: "pending-pmi-skid-window",
			cfg:  pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.Imprecise, Period: 9, SkidCycles: 30, Seed: 7},
		},
		{
			// AMD IBS with hardware 4-LSB randomization: reload values as
			// small as base&^15 land inside what a naive engine would
			// stride over; uop counting divides headroom by MaxUops.
			name: "hw4lsb-inside-stride",
			cfg:  pmu.Config{Event: pmu.EvUopsRetired, Precision: pmu.PreciseIBS, Period: 17, Rand: pmu.RandHW4LSB, Seed: 11},
		},
		{
			// Taken-branch counting with LBR capture: strides must stream
			// every taken branch into the ring in retirement order.
			name: "brtaken-lbr-stream",
			cfg: pmu.Config{Event: pmu.EvBrTaken, Precision: pmu.Imprecise, Period: 3, SkidCycles: 12,
				CaptureLBR: true, LBRDepth: 4, Seed: 13},
		},
		{
			// LBR contention: call/ret filtering in the shadow ring must
			// see the same branch stream through OnFastBranch.
			name: "lbr-contention-callstack",
			cfg: pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 11,
				CaptureLBR: true, LBRDepth: 8, LBRContention: 0.5, Seed: 17},
		},
		{
			// Frequency mode: every sample retunes the period, so headroom
			// grants shrink and grow with the feedback loop.
			name: "freq-mode-retune",
			cfg: pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.Imprecise, Period: 40, SkidCycles: 10,
				FreqMode: true, TargetIntervalCycles: 50, Seed: 19},
		},
	}

	evs := synthStream(4000)
	for _, tc := range cases {
		for _, chunk := range []int{1, 3, 9, 64, 4000} {
			t.Run(fmt.Sprintf("%s/chunk=%d", tc.name, chunk), func(t *testing.T) {
				direct := pmu.New(tc.cfg)
				replayDirect(direct, evs)
				bulk := pmu.New(tc.cfg)
				replayBulk(t, bulk, evs, chunk)
				if err := diffUnits(direct, bulk); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFastHeadroomValues pins the exact headroom arithmetic.
func TestFastHeadroomValues(t *testing.T) {
	ev := func(uops uint8) cpu.RetireEvent {
		return cpu.RetireEvent{Idx: 1, Cycle: 100, Seq: 1, Op: isa.OpAdd, Uops: uops}
	}

	t.Run("inst-retired", func(t *testing.T) {
		u := pmu.New(pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 10, Seed: 1})
		if got := u.FastHeadroom(); got != 9 {
			t.Fatalf("fresh headroom = %d, want 9", got)
		}
		u.OnRetire(ev(1))
		if got := u.FastHeadroom(); got != 8 {
			t.Fatalf("after 1 event headroom = %d, want 8", got)
		}
	})

	t.Run("period-1-never-strides", func(t *testing.T) {
		u := pmu.New(pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 1, Seed: 1})
		if got := u.FastHeadroom(); got != 0 {
			t.Fatalf("period-1 headroom = %d, want 0", got)
		}
	})

	t.Run("uops-divided-by-max", func(t *testing.T) {
		u := pmu.New(pmu.Config{Event: pmu.EvUopsRetired, Precision: pmu.PreciseIBS, Period: 10, Seed: 1})
		// avail = 9 units; a single instruction can carry isa.MaxUops of
		// them, so only 9/MaxUops instructions are guaranteed safe.
		if got, want := u.FastHeadroom(), uint64(9/isa.MaxUops); got != want {
			t.Fatalf("uop headroom = %d, want %d", got, want)
		}
	})

	t.Run("armed-pebs-zero", func(t *testing.T) {
		u := pmu.New(pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PrecisePEBS, Period: 4, Seed: 1})
		for i := 0; i < 4; i++ {
			u.OnRetire(ev(1)) // 4th event overflows and arms
		}
		if got := u.FastHeadroom(); got != 0 {
			t.Fatalf("armed headroom = %d, want 0", got)
		}
		// The capture happens at the next eligible event in a later
		// cycle; afterwards the counter sits at 1 of 4, so headroom is
		// 4-1-1 = 2.
		later := ev(1)
		later.Cycle = 200
		later.Seq = 5
		u.OnRetire(later)
		if got := u.FastHeadroom(); got != 2 {
			t.Fatalf("post-capture headroom = %d, want 2", got)
		}
		if n := len(u.Samples()); n != 1 {
			t.Fatalf("samples = %d, want 1", n)
		}
	})

	t.Run("pending-pmi-zero", func(t *testing.T) {
		u := pmu.New(pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.Imprecise, Period: 2, SkidCycles: 50, Seed: 1})
		u.OnRetire(ev(1))
		u.OnRetire(ev(1)) // overflow: PMI pending for ~50+jitter cycles
		if got := u.FastHeadroom(); got != 0 {
			t.Fatalf("pending-PMI headroom = %d, want 0", got)
		}
	})

	t.Run("bulk-contract-panic", func(t *testing.T) {
		u := pmu.New(pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 10, Seed: 1})
		defer func() {
			if recover() == nil {
				t.Fatal("BulkRetire beyond the headroom grant did not panic")
			}
		}()
		u.BulkRetire(cpu.BulkCounts{Instrs: 10, Uops: 10}) // grant was 9
	})
}
