// Lbrprofile demonstrates full Last-Branch-Record profiling (§3.2): the
// profile is reconstructed purely from sampled LBR stacks — the PMI
// address is never used — and per-block estimates land within a few
// percent of exact instrumentation on branchy code.
package main

import (
	"fmt"
	"log"
	"sort"

	"pmutrust"
)

func main() {
	spec, err := pmutrust.WorkloadByName("xalancbmk")
	if err != nil {
		log.Fatal(err)
	}
	prog := spec.Build(0.5)
	reference, err := pmutrust.Reference(prog)
	if err != nil {
		log.Fatal(err)
	}

	method, err := pmutrust.MethodByKey("lbr")
	if err != nil {
		log.Fatal(err)
	}
	prof, run, err := pmutrust.Profile(prog, pmutrust.Westmere(), method,
		pmutrust.Options{PeriodBase: 4000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	e, err := pmutrust.AccuracyError(prof, reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on Westmere via LBR: %d stacks, accuracy error %.4f\n\n",
		prog.Name, len(run.Samples), e)

	// Show the hottest functions, estimated purely from branch records.
	fp := prof.ToFunctions()
	rank := fp.Ranking()
	refRank := pmutrust.RefFunctionRanking(reference)

	refByFunc := make([]float64, prog.NumFuncs())
	for b, ic := range reference.InstrCount {
		refByFunc[prog.Blocks[b].Func] += float64(ic)
	}
	var estTotal float64
	for _, v := range fp.InstrEstimate {
		estTotal += v
	}
	fmt.Printf("%-12s %8s %8s\n", "function", "est %", "exact %")
	for _, id := range rank[:min(10, len(rank))] {
		fmt.Printf("%-12s %7.2f%% %7.2f%%\n", prog.Funcs[id].Name,
			100*fp.InstrEstimate[id]/estTotal,
			100*refByFunc[id]/float64(reference.NetInstructions))
	}

	agree := pmutrust.CompareRankings(rank, refRank, 10)
	fmt.Printf("\ntop-10 agreement: exact=%v overlap=%.0f%% tau=%.2f\n",
		agree.ExactOrder, 100*agree.SetOverlap, agree.KendallTau)

	// Worst-estimated hot blocks: Table 3 warns LBR per-block errors can
	// still reach 30-50% for some blocks.
	type blockErr struct {
		name string
		rel  float64
	}
	var worst []blockErr
	for b, ic := range reference.InstrCount {
		if ic < reference.NetInstructions/1000 {
			continue // only blocks with at least 0.1% of execution
		}
		rel := (prof.InstrEstimate[b] - float64(ic)) / float64(ic)
		if rel < 0 {
			rel = -rel
		}
		worst = append(worst, blockErr{prog.Blocks[b].FullName(prog), rel})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].rel > worst[j].rel })
	fmt.Println("\nworst-estimated hot blocks (relative error):")
	for _, w := range worst[:min(5, len(worst))] {
		fmt.Printf("  %-28s %.1f%%\n", w.name, 100*w.rel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
