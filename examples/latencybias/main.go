// Latencybias reproduces the paper's Latency-Biased story (§4.3.1, §5.1):
// a loop alternating a cheap add path with an expensive divide path fools
// skid-based sampling into piling samples onto the divide, and the Ivy
// Bridge precisely-distributed event (PDIR) repairs the distribution.
//
// The example prints the per-block sample shares under three methods so
// the bias is visible directly, not just as an aggregate error number.
package main

import (
	"fmt"
	"log"

	"pmutrust"
)

func main() {
	spec, err := pmutrust.WorkloadByName("LatencyBiased")
	if err != nil {
		log.Fatal(err)
	}
	prog := spec.Build(1.0)
	reference, err := pmutrust.Reference(prog)
	if err != nil {
		log.Fatal(err)
	}

	mach := pmutrust.IvyBridge()
	methods := []string{"classic", "precise+prime+rand", "pdir+ipfix"}

	// Header: the interesting blocks. The even and odd arms execute
	// equally often and have equal instruction counts — a perfect profile
	// gives them equal shares.
	fmt.Printf("%-14s", "block")
	for _, key := range methods {
		fmt.Printf(" %20s", key)
	}
	fmt.Printf(" %10s\n", "exact")

	shares := make(map[string][]float64)
	for _, key := range methods {
		method, err := pmutrust.MethodByKey(key)
		if err != nil {
			log.Fatal(err)
		}
		prof, _, err := pmutrust.Profile(prog, mach, method,
			pmutrust.Options{PeriodBase: 4000, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, v := range prof.InstrEstimate {
			total += v
		}
		s := make([]float64, prog.NumBlocks())
		for b, v := range prof.InstrEstimate {
			s[b] = v / total
		}
		shares[key] = s

		e, err := pmutrust.AccuracyError(prof, reference)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# %-22s accuracy error %.4f\n", key, e)
	}

	for b := 0; b < prog.NumBlocks(); b++ {
		blk := prog.Blocks[b]
		if reference.InstrCount[b] == 0 {
			continue
		}
		fmt.Printf("%-14s", blk.FullName(prog))
		for _, key := range methods {
			fmt.Printf(" %19.1f%%", 100*shares[key][b])
		}
		fmt.Printf(" %9.1f%%\n",
			100*float64(reference.InstrCount[b])/float64(reference.NetInstructions))
	}
	fmt.Println("\nClassic piles the odd(divide) block's shadow onto whatever retires next;")
	fmt.Println("PDIR+fix tracks the exact shares.")
}
