// Methodsweep runs the full machine × method matrix over one application
// workload — a single-workload slice of the paper's Table 2 — and prints
// which method wins on each machine. Useful as a template for evaluating
// a new workload against the registry.
package main

import (
	"fmt"
	"log"

	"pmutrust"
)

func main() {
	spec, err := pmutrust.WorkloadByName("omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	prog := spec.Build(1.0)
	reference, err := pmutrust.Reference(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d funcs, %d blocks, %d instructions\n\n",
		prog.Name, prog.NumFuncs(), prog.NumBlocks(), reference.NetInstructions)

	methods := pmutrust.Methods()
	fmt.Printf("%-12s", "machine")
	for _, m := range methods {
		fmt.Printf(" %18s", m.Key)
	}
	fmt.Println()

	for _, mach := range pmutrust.Machines() {
		fmt.Printf("%-12s", mach.Name)
		bestKey, bestErr := "", -1.0
		for _, m := range methods {
			prof, _, err := pmutrust.Profile(prog, mach, m,
				pmutrust.Options{PeriodBase: 4000, Seed: 11})
			if err != nil {
				// Unsupported on this machine (e.g. LBR on Magny-Cours).
				fmt.Printf(" %18s", "-")
				continue
			}
			e, err := pmutrust.AccuracyError(prof, reference)
			if err != nil {
				log.Fatal(err)
			}
			if bestErr < 0 || e < bestErr {
				bestKey, bestErr = m.Key, e
			}
			fmt.Printf(" %18.4f", e)
		}
		fmt.Printf("   <- best: %s (%.4f)\n", bestKey, bestErr)
	}
	fmt.Println("\nThe paper's recommendation (§6.3): sample with precise distributed")
	fmt.Println("events and prime periods; use LBR methods for ultimate accuracy.")
}
