// Quickstart: profile one kernel with every sampling method on one
// machine, and print the paper's accuracy metric for each — the smallest
// complete tour of the public API.
package main

import (
	"fmt"
	"log"

	"pmutrust"
)

func main() {
	// 1. Pick a workload: the G4Box kernel (two functions, short branchy
	// blocks — a good showcase for the differences between methods).
	spec, err := pmutrust.WorkloadByName("G4Box")
	if err != nil {
		log.Fatal(err)
	}
	prog := spec.Build(1.0)

	// 2. Exact ground truth, the role Pin plays in the paper.
	reference, err := pmutrust.Reference(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d blocks, %d instructions executed\n\n",
		prog.Name, prog.NumBlocks(), reference.NetInstructions)

	// 3. Sample with every Table 3 method on Ivy Bridge and score.
	mach := pmutrust.IvyBridge()
	fmt.Printf("%-20s %10s %8s\n", "method", "samples", "error")
	for _, method := range pmutrust.Methods() {
		prof, run, err := pmutrust.Profile(prog, mach, method,
			pmutrust.Options{PeriodBase: 4000, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		e, err := pmutrust.AccuracyError(prof, reference)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10d %8.4f\n", method.Key, len(run.Samples), e)
	}
	fmt.Println("\nLower is better; compare the classic row with pdir+ipfix and lbr.")
}
