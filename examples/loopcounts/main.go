// Loopcounts demonstrates recovering loop trip counts from Last Branch
// Records — the §2.1 use case that pure event-based sampling cannot serve:
// "Loop tripcounts are widely used for a variety of purposes, but are hard
// to obtain with pure EBS methods."
//
// The example builds a custom workload with known nested-loop trip counts,
// samples it with the LBR method, derives an edge profile, and compares
// discovered trip counts with exact instrumentation.
package main

import (
	"fmt"
	"log"
	"sort"

	"pmutrust"
)

func main() {
	// A custom program: 5,000 outer iterations, inner loops of 12 and 4.
	b := pmutrust.NewBuilder("loopy")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 5000)
	outer := f.Block("outer")
	outer.Movi(2, 12)
	inner1 := f.Block("inner1")
	inner1.Addi(3, 3, 1)
	inner1.Addi(2, 2, -1)
	inner1.Cmpi(2, 0)
	inner1.Jnz("inner1")
	mid := f.Block("mid")
	mid.Movi(2, 4)
	inner2 := f.Block("inner2")
	inner2.Mul(4, 3, 3)
	inner2.Addi(2, 2, -1)
	inner2.Cmpi(2, 0)
	inner2.Jnz("inner2")
	latch := f.Block("latch")
	latch.Addi(1, 1, -1)
	latch.Cmpi(1, 0)
	latch.Jnz("outer")
	f.Block("exit").Halt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth.
	exact, err := pmutrust.ReferenceEdges(prog)
	if err != nil {
		log.Fatal(err)
	}

	// LBR-sampled estimate.
	method, err := pmutrust.MethodByKey("lbr")
	if err != nil {
		log.Fatal(err)
	}
	run, err := pmutrust.Collect(prog, pmutrust.IvyBridge(), method,
		pmutrust.Options{PeriodBase: 2000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	est, err := pmutrust.EdgeProfileFromLBR(prog, run)
	if err != nil {
		log.Fatal(err)
	}

	exactTrips := exact.TripCounts()
	estTrips := est.TripCounts()

	var headers []int
	for h := range exactTrips {
		headers = append(headers, h)
	}
	sort.Ints(headers)

	fmt.Printf("loops discovered from %d LBR stacks:\n\n", len(run.Samples))
	fmt.Printf("%-10s %12s %12s\n", "header", "exact trips", "LBR trips")
	for _, h := range headers {
		name := prog.Blocks[h].FullName(prog)
		estStat, ok := estTrips[h]
		estStr := "(missed)"
		switch {
		case ok && estStat.Entries > 0:
			estStr = fmt.Sprintf("%.2f", estStat.TripCount)
		case ok:
			// The loop's entry edge was never captured in a window — for
			// a loop entered once per run that is the expected outcome.
			estStr = "(entry unsampled)"
		}
		fmt.Printf("%-10s %12.2f %16s\n", name, exactTrips[h].TripCount, estStr)
	}
	fmt.Println("\nExact trips come from instrumentation; LBR trips from sampled branch")
	fmt.Println("records alone. Expect a few percent of bias on periodic loops (§5.1).")
}
