package pmutrust_test

import (
	"fmt"

	"pmutrust"
)

// ExampleProfile shows the core workflow: build a workload, collect a
// profile with one sampling method, and score it against exact
// instrumentation.
func ExampleProfile() {
	spec, _ := pmutrust.WorkloadByName("LatencyBiased")
	prog := spec.Build(0.25)

	reference, _ := pmutrust.Reference(prog)
	method, _ := pmutrust.MethodByKey("pdir+ipfix")
	prof, run, _ := pmutrust.Profile(prog, pmutrust.IvyBridge(), method,
		pmutrust.Options{PeriodBase: 1000, Seed: 1})

	errVal, _ := pmutrust.AccuracyError(prof, reference)
	fmt.Printf("method=%s samples>0=%v error<0.1=%v\n",
		run.Method.Key, len(run.Samples) > 0, errVal < 0.1)
	// Output: method=pdir+ipfix samples>0=true error<0.1=true
}

// ExampleMethods lists the paper's Table 3 method registry.
func ExampleMethods() {
	for _, m := range pmutrust.Methods() {
		fmt.Println(m.Key)
	}
	// Output:
	// classic
	// precise
	// precise+rand
	// precise+prime
	// precise+prime+rand
	// pdir+ipfix
	// lbr
}

// ExampleMachines shows the three evaluation platforms and their key
// capability differences.
func ExampleMachines() {
	for _, m := range pmutrust.Machines() {
		fmt.Printf("%s lbr=%v pdir=%v\n", m.Name, m.HasLBR, m.HasPDIR)
	}
	// Output:
	// MagnyCours lbr=false pdir=false
	// Westmere lbr=true pdir=false
	// IvyBridge lbr=true pdir=true
}

// ExampleNewBuilder constructs a custom two-block workload with the
// builder DSL and validates it.
func ExampleNewBuilder() {
	b := pmutrust.NewBuilder("demo")
	f := b.Func("main")
	entry := f.Block("entry")
	entry.Movi(1, 100)
	loop := f.Block("loop")
	loop.Addi(1, 1, -1)
	loop.Cmpi(1, 0)
	loop.Jnz("loop")
	f.Block("exit").Halt()

	prog, err := b.Build()
	fmt.Println(err == nil, prog.NumBlocks(), prog.NumFuncs())
	// Output: true 3 1
}

// ExampleEdgeProfileFromLBR recovers a loop trip count purely from
// sampled branch records.
func ExampleEdgeProfileFromLBR() {
	b := pmutrust.NewBuilder("loops")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 3000)
	outer := f.Block("outer")
	outer.Movi(2, 10)
	inner := f.Block("inner")
	inner.Addi(3, 3, 1)
	inner.Addi(2, 2, -1)
	inner.Cmpi(2, 0)
	inner.Jnz("inner")
	latch := f.Block("latch")
	latch.Addi(1, 1, -1)
	latch.Cmpi(1, 0)
	latch.Jnz("outer")
	f.Block("exit").Halt()
	prog, _ := b.Build()

	method, _ := pmutrust.MethodByKey("lbr")
	run, _ := pmutrust.Collect(prog, pmutrust.Westmere(), method,
		pmutrust.Options{PeriodBase: 1000, Seed: 2})
	edges, _ := pmutrust.EdgeProfileFromLBR(prog, run)

	for header, loop := range edges.TripCounts() {
		if prog.Blocks[header].Label == "inner" && loop.Entries > 0 {
			fmt.Printf("inner loop ~10 trips: %v\n", loop.TripCount > 7 && loop.TripCount < 13)
		}
	}
	// Output: inner loop ~10 trips: true
}

// ExampleAssess produces the paper's §6.3-style recommendation for a
// workload/machine pair.
func ExampleAssess() {
	spec, _ := pmutrust.WorkloadByName("G4Box")
	prog := spec.Build(0.05)
	a, _ := pmutrust.Assess(prog, pmutrust.MagnyCours(),
		pmutrust.AssessOptions{PeriodBase: 1000, Seed: 1, Repeats: 1})
	fmt.Println(a.Best.Supported, a.Best.Method.Key != "classic")
	// Output: true true
}
