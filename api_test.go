package pmutrust_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"pmutrust"
)

// TestPublicAPIWorkflow exercises the complete documented user journey
// through the package facade: workload → reference → profile → score.
func TestPublicAPIWorkflow(t *testing.T) {
	spec, err := pmutrust.WorkloadByName("G4Box")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(0.05)
	reference, err := pmutrust.Reference(prog)
	if err != nil {
		t.Fatal(err)
	}

	var classicErr, lbrErr float64
	for _, key := range []string{"classic", "lbr"} {
		method, err := pmutrust.MethodByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		prof, run, err := pmutrust.Profile(prog, pmutrust.IvyBridge(), method,
			pmutrust.Options{PeriodBase: 500, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Samples) == 0 {
			t.Fatalf("%s: no samples", key)
		}
		e, err := pmutrust.AccuracyError(prof, reference)
		if err != nil {
			t.Fatal(err)
		}
		switch key {
		case "classic":
			classicErr = e
		case "lbr":
			lbrErr = e
		}
	}
	if lbrErr >= classicErr {
		t.Errorf("headline result does not hold through the facade: lbr %.4f >= classic %.4f",
			lbrErr, classicErr)
	}
	if f := pmutrust.ImprovementFactor(classicErr, lbrErr); f <= 1 {
		t.Errorf("improvement factor %.2f", f)
	}
}

func TestPublicAPIEnumerations(t *testing.T) {
	if len(pmutrust.Workloads()) != 13 {
		t.Errorf("workloads = %d, want 13 (4 kernels + 5 apps + 4 phased)", len(pmutrust.Workloads()))
	}
	if len(pmutrust.Kernels()) != 4 || len(pmutrust.Apps()) != 5 {
		t.Error("kernel/app split wrong")
	}
	if len(pmutrust.PhasedWorkloads()) != 4 {
		t.Errorf("phased family = %d, want 4", len(pmutrust.PhasedWorkloads()))
	}
	if len(pmutrust.Machines()) != 3 {
		t.Error("machines != 3")
	}
	if len(pmutrust.Methods()) != 7 {
		t.Error("methods != 7")
	}
	if _, err := pmutrust.MachineByName("Westmere"); err != nil {
		t.Error(err)
	}
}

// TestPublicAPISpecTrace drives the authoring surface through the
// facade: parse a spec, build it, record a trace, replay it
// bit-identically (the docs/WORKLOADS.md contract).
func TestPublicAPISpecTrace(t *testing.T) {
	spec, err := pmutrust.ParsePhasedSpec([]byte(`{
		"v": 1, "name": "PhasedAPI", "seed": 3,
		"schedule": {"kind": "ramp"},
		"phases": [{"name": "mem", "mix": {"load": 0.6, "alu": 0.4}}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pmutrust.BuildPhased(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "api.trace")
	entry := pmutrust.RecordTrace(prog, pmutrust.TraceMeta{
		SpecFP: spec.Fingerprint(), Source: "spec:PhasedAPI", Scale: 0.05,
	})
	if err := pmutrust.WriteTraceFile(path, entry); err != nil {
		t.Fatal(err)
	}
	entries, err := pmutrust.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	replayed, err := pmutrust.ReplayTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Program, prog) {
		t.Fatal("replayed program differs from the recorded one")
	}
	if replayed.Meta != entry.Meta {
		t.Fatalf("replayed meta %+v, want %+v", replayed.Meta, entry.Meta)
	}
}

// TestPublicAPICustomProgram builds a custom workload through the facade's
// Builder re-export and profiles it — the extension path downstream users
// take for their own programs.
func TestPublicAPICustomProgram(t *testing.T) {
	b := pmutrust.NewBuilder("custom")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 20_000)
	l := f.Block("loop")
	l.Addi(2, 2, 1)
	l.Mul(3, 2, 2)
	l.Addi(1, 1, -1)
	l.Cmpi(1, 0)
	l.Jnz("loop")
	f.Block("exit").Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	reference, err := pmutrust.Reference(prog)
	if err != nil {
		t.Fatal(err)
	}
	method, err := pmutrust.MethodByKey("pdir+ipfix")
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := pmutrust.Profile(prog, pmutrust.IvyBridge(), method,
		pmutrust.Options{PeriodBase: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := pmutrust.AccuracyError(prof, reference)
	if err != nil {
		t.Fatal(err)
	}
	if e2 < 0 || e2 > 2 {
		t.Errorf("error out of metric range: %v", e2)
	}
	fp := prof.ToFunctions()
	if len(fp.Ranking()) != 1 {
		t.Error("single-function ranking wrong")
	}
}

// TestPublicAPITenants exercises the multi-tenant scheduling surface
// through the facade: timeshare two tenants on one simulated core and
// read the scheduling-noise accounting off each Run.
func TestPublicAPITenants(t *testing.T) {
	spec, err := pmutrust.WorkloadByName("G4Box")
	if err != nil {
		t.Fatal(err)
	}
	progs := []*pmutrust.Program{spec.Build(0.05), spec.Build(0.05)}
	method, err := pmutrust.MethodByKey("classic")
	if err != nil {
		t.Fatal(err)
	}
	runs, err := pmutrust.CollectTenants(progs, pmutrust.Westmere(), method,
		pmutrust.SchedOptions{Options: pmutrust.Options{PeriodBase: 500, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(progs) {
		t.Fatalf("runs = %d, want %d", len(runs), len(progs))
	}
	for i, run := range runs {
		if run.Sched == nil {
			t.Fatalf("tenant %d: no scheduling stats", i)
		}
		if run.Sched.Tenant != i || run.Sched.Tenants != len(progs) {
			t.Errorf("tenant %d: stats indexed as %d/%d", i, run.Sched.Tenant, run.Sched.Tenants)
		}
		if run.Sched.Switches == 0 {
			t.Errorf("tenant %d: never context-switched", i)
		}
		if run.Sched.KernelLeakInstrs == 0 {
			t.Errorf("tenant %d: kernel switch path leaked no events", i)
		}
		if len(run.Samples) == 0 {
			t.Errorf("tenant %d: no samples", i)
		}
	}
}

// TestPublicAPIMultiplexing exercises the counter-multiplexing surface
// through the facade: request more counting events than the machine has
// counters and read exact-vs-scaled counts off the Run.
func TestPublicAPIMultiplexing(t *testing.T) {
	spec, err := pmutrust.WorkloadByName("G4Box")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(0.05)
	method, err := pmutrust.MethodByKey("classic")
	if err != nil {
		t.Fatal(err)
	}
	events, err := pmutrust.ParseEventList("inst_retired,br_taken,load,store,cond_br,fp_op")
	if err != nil {
		t.Fatal(err)
	}
	_, run, err := pmutrust.Profile(prog, pmutrust.MagnyCours(), method,
		pmutrust.Options{
			PeriodBase: 500,
			Seed:       1,
			Events:     events,
			MuxPolicy:  pmutrust.MuxRoundRobin,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Counts) != len(events) {
		t.Fatalf("counts = %d, want %d", len(run.Counts), len(events))
	}
	if run.MuxRotations == 0 {
		t.Error("six events on Magny-Cours (3 free counters) never rotated")
	}
	var sawScaled bool
	for _, c := range run.Counts {
		if c.Event == pmutrust.EvInstRetired && c.Exact != run.CPU.Instructions {
			t.Errorf("inst_retired exact %d != %d retired", c.Exact, run.CPU.Instructions)
		}
		if c.RunningCycles > 0 && c.RunningCycles < c.EnabledCycles {
			sawScaled = true
		}
	}
	if !sawScaled {
		t.Error("no event was actually multiplexed")
	}
}
