// Benchmark harness: one benchmark per paper table/figure (the regenerable
// artifacts of DESIGN.md's experiment index) plus micro-benchmarks for the
// substrates. Accuracy errors are attached to benchmark output as custom
// metrics ("err") so `go test -bench` output doubles as a results table.
//
// Absolute numbers are not expected to match the paper (the substrate is a
// simulator, not the authors' testbed); the shapes — who wins, by what
// rough factor — are asserted by the test suite and recorded in
// EXPERIMENTS.md.
package pmutrust_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/experiments"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/profile"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/workloads"
)

// benchScale keeps one full (workload, machine, method) measurement in the
// tens-of-milliseconds range so the whole harness completes in minutes.
func benchScale() experiments.Scale {
	return experiments.Scale{Name: "bench", Workload: 0.25, PeriodBase: 1000, Repeats: 1}
}

// benchCell measures one Table cell and reports the error as a metric.
func benchCell(b *testing.B, workload, machineName, methodKey string) {
	b.Helper()
	r := experiments.NewRunner(benchScale(), 42)
	spec, err := workloads.ByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	mach, err := machine.ByName(machineName)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sampling.MethodByKey(methodKey)
	if err != nil {
		b.Fatal(err)
	}
	var lastErr float64
	for i := 0; i < b.N; i++ {
		meas, err := r.Measure(spec, mach, m)
		if err != nil {
			b.Fatal(err)
		}
		lastErr = meas.Err
	}
	b.ReportMetric(lastErr, "err")
}

// --- Table 1: kernels × methods × machines -------------------------------

func BenchmarkTable1(b *testing.B) {
	for _, spec := range workloads.Kernels() {
		for _, mach := range machine.All() {
			for _, key := range []string{"classic", "precise+prime+rand", "pdir+ipfix", "lbr"} {
				m, _ := sampling.MethodByKey(key)
				if _, ok := sampling.Resolve(m, mach); !ok {
					continue
				}
				b.Run(spec.Name+"/"+mach.Name+"/"+key, func(b *testing.B) {
					benchCell(b, spec.Name, mach.Name, key)
				})
			}
		}
	}
}

// --- Table 2: applications × methods × machines ---------------------------

func BenchmarkTable2(b *testing.B) {
	for _, spec := range workloads.Apps() {
		for _, mach := range machine.All() {
			for _, key := range []string{"classic", "precise", "pdir+ipfix", "lbr"} {
				m, _ := sampling.MethodByKey(key)
				if _, ok := sampling.Resolve(m, mach); !ok {
					continue
				}
				b.Run(spec.Name+"/"+mach.Name+"/"+key, func(b *testing.B) {
					benchCell(b, spec.Name, mach.Name, key)
				})
			}
		}
	}
}

// --- §5.2 side experiments -------------------------------------------------

func BenchmarkSideIPFix(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	var factor float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunIPFix()
		if err != nil {
			b.Fatal(err)
		}
		factor = res.Factor
	}
	b.ReportMetric(factor, "improvement_x")
}

func BenchmarkSideRanking(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	for i := 0; i < b.N; i++ {
		if _, err := r.RunRanking(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md A1-A5) -------------------------------------------

func BenchmarkAblationSkid(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	for i := 0; i < b.N; i++ {
		if _, _, err := r.AblateSkid(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPeriod(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	for i := 0; i < b.N; i++ {
		if _, _, err := r.AblatePeriod(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLBRDepth(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	for i := 0; i < b.N; i++ {
		if _, _, err := r.AblateLBRDepth(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBurst(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	for i := 0; i < b.N; i++ {
		if _, _, err := r.AblateBurst(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRandAmp(b *testing.B) {
	r := experiments.NewRunner(benchScale(), 42)
	for i := 0; i < b.N; i++ {
		if _, _, err := r.AblateRandAmp(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sweep layer ------------------------------------------------------------

// BenchmarkSweepKernels runs the full kernels × machines × methods grid
// through the parallel sweep layer at 1 worker and at GOMAXPROCS: the
// ratio of the two is the harness's multicore speedup. A fresh runner
// per iteration keeps workload builds and reference collection inside
// the measured work, as in a cold full-table run.
func BenchmarkSweepKernels(b *testing.B) {
	g := experiments.Grid{
		Workloads: workloads.Kernels(),
		Machines:  machine.All(),
		Methods:   sampling.Registry(),
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner(benchScale(), 42)
				ms, err := r.Sweep(g, experiments.SweepOptions{Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(ms)), "cells")
			}
		})
	}
}

// --- Engines: interp vs fast ------------------------------------------------

// BenchmarkEngines times full sampling collections (workload + PMU) on the
// Table 4 kernel set under both execution engines and writes
// BENCH_engine.json with the per-workload speedup factor and its geomean —
// the perf-trajectory artifact for the fast-path executor. The engines are
// bit-identical (see internal/cpu's differential harness), so the factor
// is pure wall-clock.
func BenchmarkEngines(b *testing.B) {
	type timing struct{ interpNs, fastNs float64 }
	mach := machine.IvyBridge()
	m, err := sampling.MethodByKey("precise+prime+rand")
	if err != nil {
		b.Fatal(err)
	}
	const periodBase = 4000 // the PaperScale period regime

	// The interp and fast cases run telemetry-disabled (nil sink) and feed
	// the BENCH_engine.json artifact, so the gated speedup is the
	// instrumented-but-disabled configuration — the one every production
	// run without -telemetry uses. The fast+sink case times the same
	// collection with a live sink attached; it is reported for inspection
	// but kept out of the artifact (attached-mode cost is not the gated
	// property).
	modes := []struct {
		name string
		eng  sampling.EngineMode
		sink bool
	}{
		{sampling.EngineInterp.String(), sampling.EngineInterp, false},
		{sampling.EngineFast.String(), sampling.EngineFast, false},
		{sampling.EngineFast.String() + "+sink", sampling.EngineFast, true},
	}
	specs := workloads.Kernels()
	timings := make(map[string]*timing, len(specs))
	var order []string
	for _, spec := range specs {
		spec := spec
		p := spec.Build(0.25)
		timings[spec.Name] = &timing{}
		order = append(order, spec.Name)
		for _, mode := range modes {
			mode := mode
			b.Run(spec.Name+"/"+mode.name, func(b *testing.B) {
				var sink *telemetry.Sink
				if mode.sink {
					sink = &telemetry.Sink{}
				}
				var instrs uint64
				for i := 0; i < b.N; i++ {
					run, err := sampling.Collect(p, mach, m, sampling.Options{
						PeriodBase: periodBase,
						Seed:       42,
						Engine:     mode.eng,
						Telemetry:  sink,
					})
					if err != nil {
						b.Fatal(err)
					}
					instrs = run.CPU.Instructions
				}
				perOp := b.Elapsed().Seconds() / float64(b.N)
				b.ReportMetric(float64(instrs)/perOp/1e6, "Minstr/s")
				if mode.sink {
					return
				}
				tm := timings[spec.Name]
				if mode.eng == sampling.EngineInterp {
					tm.interpNs = perOp * 1e9
				} else {
					tm.fastNs = perOp * 1e9
				}
			})
		}
	}

	// Emit the artifact. Under -benchtime=1x (CI smoke) the numbers are
	// single-shot and noisy; run with a real -benchtime for the recorded
	// trajectory.
	type entry struct {
		Workload string  `json:"workload"`
		InterpNs float64 `json:"interp_ns"`
		FastNs   float64 `json:"fast_ns"`
		Speedup  float64 `json:"speedup"`
	}
	doc := struct {
		Machine    string  `json:"machine"`
		Method     string  `json:"method"`
		PeriodBase uint64  `json:"period_base"`
		Workloads  []entry `json:"workloads"`
		Geomean    float64 `json:"geomean_speedup"`
	}{Machine: mach.Name, Method: m.Key, PeriodBase: periodBase}
	logGeo, n := 0.0, 0
	for _, name := range order {
		tm := timings[name]
		if tm.interpNs <= 0 || tm.fastNs <= 0 {
			continue // partial -bench filter run
		}
		sp := tm.interpNs / tm.fastNs
		doc.Workloads = append(doc.Workloads, entry{
			Workload: name, InterpNs: tm.interpNs, FastNs: tm.fastNs, Speedup: sp,
		})
		logGeo += math.Log(sp)
		n++
	}
	if n == 0 {
		return
	}
	doc.Geomean = math.Exp(logGeo / float64(n))
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("engine speedup geomean %.2fx across %d kernels (BENCH_engine.json)", doc.Geomean, n)
}

// BenchmarkCollectAllocs pins the steady-state allocation cost of one
// full sampling collection, without and with LBR capture (the LBR case
// is the allocation-heavy one: every sample snapshots the branch ring;
// the arena in internal/pmu amortizes those snapshots into shared
// chunks). Run with -benchmem. The benchmark also writes
// BENCH_alloc.json — allocations per collection, measured directly via
// runtime.MemStats so the artifact works at any -benchtime — which
// cmd/benchgate compares against the committed baseline: a per-sample
// allocation creeping back into the hot path multiplies allocs/op by
// the sample count and fails the gate.
func BenchmarkCollectAllocs(b *testing.B) {
	mach := machine.IvyBridge()
	p := workloads.MustBuild("G4Box", 0.1)
	type caseResult struct {
		Method      string  `json:"method"`
		Samples     int     `json:"samples"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	// The testing package re-invokes the parent function once per
	// sub-benchmark run, so results are keyed (last run wins), not
	// appended. The "+sink" cases attach a live telemetry sink: the sink
	// counts on plain atomics with no allocation, so its allocs/op
	// baseline equals the nil-sink case's — benchgate turns any
	// divergence (a counter implementation that starts allocating, or a
	// nil-sink path that stops being free) into a gate failure.
	cases := []struct {
		name string
		key  string
		sink bool
	}{
		{"precise+prime+rand", "precise+prime+rand", false},
		{"precise+prime+rand+sink", "precise+prime+rand", true},
		{"lbr", "lbr", false},
		{"lbr+sink", "lbr", true},
	}
	results := make(map[string]caseResult, len(cases))
	for _, c := range cases {
		c := c
		m, err := sampling.MethodByKey(c.key)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink *telemetry.Sink
			if c.sink {
				sink = &telemetry.Sink{}
			}
			var samples int
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			for i := 0; i < b.N; i++ {
				run, err := sampling.Collect(p, mach, m, sampling.Options{
					PeriodBase: 1000,
					Seed:       42,
					Telemetry:  sink,
				})
				if err != nil {
					b.Fatal(err)
				}
				samples = len(run.Samples)
			}
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(samples), "samples")
			results[c.name] = caseResult{
				Method:      c.name,
				Samples:     samples,
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(b.N),
			}
		})
	}
	if len(results) < len(cases) {
		return // partial -bench filter run
	}
	var recorded []caseResult
	for _, c := range cases {
		recorded = append(recorded, results[c.name])
	}
	doc := struct {
		Machine    string       `json:"machine"`
		Workload   string       `json:"workload"`
		PeriodBase uint64       `json:"period_base"`
		Cases      []caseResult `json:"cases"`
	}{Machine: mach.Name, Workload: "G4Box", PeriodBase: 1000, Cases: recorded}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_alloc.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkCPUTimedRun measures simulator throughput (instructions/op via
// b.SetBytes-like metric: ns/instr reported as custom metric).
func BenchmarkCPUTimedRun(b *testing.B) {
	p := workloads.MustBuild("G4Box", 0.1)
	res, err := cpu.Run(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	instrs := res.Instructions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkCPUFunctionalRun(b *testing.B) {
	p := workloads.MustBuild("G4Box", 0.1)
	res, err := cpu.RunFunctional(p, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.RunFunctional(p, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Instructions)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkPMUMonitorOverhead compares a monitored run against NopMonitor:
// the collection-overhead concern of Table 3 and [38].
func BenchmarkPMUMonitorOverhead(b *testing.B) {
	p := workloads.MustBuild("G4Box", 0.1)
	mach := machine.IvyBridge()
	cfg := pmu.Config{
		Event: pmu.EvInstRetired, Precision: pmu.PreciseDist,
		Period: 1000, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := pmu.New(cfg)
		if _, err := cpu.Run(p, mach.CPU, unit, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLBRDecode(b *testing.B) {
	p := workloads.MustBuild("G4Box", 0.2)
	m, _ := sampling.MethodByKey("lbr")
	run, err := sampling.Collect(p, machine.IvyBridge(), m, sampling.Options{PeriodBase: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lbr.BuildProfile(p, run); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(run.Samples)), "stacks")
}

func BenchmarkReferenceCollect(b *testing.B) {
	p := workloads.MustBuild("Test40", 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Collect(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileFromSamples(b *testing.B) {
	p := workloads.MustBuild("xalancbmk", 0.1)
	m, _ := sampling.MethodByKey("pdir+ipfix")
	run, err := sampling.Collect(p, machine.IvyBridge(), m, sampling.Options{PeriodBase: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.FromSamples(p, run)
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	spec, err := workloads.ByName("xalancbmk")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p := spec.Build(0.1)
		if p.NumBlocks() == 0 {
			b.Fatal("empty program")
		}
	}
}
