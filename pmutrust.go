// Package pmutrust is a harness for studying — and establishing trust in —
// the accuracy of hardware-performance-counter profiling, reproducing
// Nowak, Yasin, Mendelson and Zwaenepoel, "Establishing a Base of Trust
// with Performance Counters for Enterprise Workloads" (USENIX ATC 2015).
//
// The package front-door wires together the building blocks a user needs
// for the paper's workflow:
//
//  1. pick a workload (the paper's kernels and enterprise-application
//     analogs, or any program built with the Builder DSL),
//  2. pick a machine model (Magny-Cours, Westmere, Ivy Bridge),
//  3. pick a sampling method from the Table 3 registry (classic, precise
//     variants, PDIR with LBR IP-fix, full LBR),
//  4. collect samples on the simulated PMU, build a basic-block profile,
//     and score it against exact instrumentation with the paper's
//     accuracy-error metric.
//
// Minimal example (see examples/quickstart for the runnable version):
//
//	spec, _ := pmutrust.WorkloadByName("G4Box")
//	prog := spec.Build(1.0)
//	reference, _ := pmutrust.Reference(prog)
//	method, _ := pmutrust.MethodByKey("lbr")
//	prof, run, _ := pmutrust.Profile(prog, pmutrust.IvyBridge(), method,
//		pmutrust.Options{PeriodBase: 4000, Seed: 1})
//	errVal, _ := pmutrust.AccuracyError(prof, reference)
//	fmt.Printf("%s: %d samples, error %.4f\n", run.Method.Key, len(run.Samples), errVal)
//
// # Experiment sweeps
//
// The reproduction harness in internal/experiments evaluates full
// (workload × machine × method) grids through a parallel sweep layer:
// experiments.Grid enumerates the cells, Runner.Sweep dispatches them to
// a bounded worker pool (GOMAXPROCS workers by default, -parallel on
// cmd/pmubench to override, -timeout to bound wall-clock time), and the
// Runner's workload/reference caches are single-flight so concurrent
// workers never build the same workload twice.
//
// Sweeps are deterministic by construction: repeat rep of a cell draws
// its seed from stats.DeriveSeed(baseSeed, workload, machine, method,
// rep) — a pure function of the cell identity — so the aggregated
// results are bit-identical at any worker count and in any completion
// order. cmd/pmubench exposes the sweep results as rendered tables and,
// with -json, as machine-readable per-cell measurement records.
//
// # Results store, resumable sweeps and reports
//
// Because each cell's measurement is a pure function of its
// configuration tuple, measurements can be persisted and reused.
// internal/results keys each cell by a content address over (workload,
// machine, method, scale, period, base seed, repeats) and appends
// completed cells to a JSONL store file; Runner.SweepCached serves cells
// already present and measures only the rest. `pmubench -store
// results.jsonl` records a sweep as it runs, and re-running with
// `-resume` after an interruption re-executes only the missing cells —
// the final tables are byte-identical to an uninterrupted run.
//
// cmd/pmureport is the read side: it regenerates the paper-shaped
// accuracy tables (kernel/application matrices, per-machine method
// ranking, improvement factors) from a store file without re-measuring,
// as plain text, Markdown or CSV, and `pmureport -compare old.jsonl
// new.jsonl` diffs two stores cell-by-cell, exiting non-zero when a
// cell's accuracy error regressed beyond a tolerance.
//
// # Distributed sweeps
//
// The store sits behind the results.Store interface with two backends:
// a single append-only JSONL file, and a sharded directory of
// single-writer files merged and deduplicated on read. The latter backs
// the distributed sweep service (internal/sweepd): `pmubench -serve`
// partitions a matrix experiment's cell grid into shards leased through
// expiring lease files under a shared sweep directory, N `pmubench
// -worker` processes (local or on any host sharing the filesystem)
// claim shards and append completed cells to per-shard files, and the
// coordinator streams progress/ETA and renders the final tables from
// the merged records. Workers killed mid-shard — even mid-record-write —
// cost at most one lease TTL and never a re-measurement of their
// completed cells; because every cell is content-addressed, the
// distributed result is byte-identical to a single-process run (a
// subprocess fault-injection harness in internal/sweepd proves it).
// pmureport accepts the sweep directory anywhere it takes a store file.
//
// # Execution engines
//
// Two engines execute the simulated machines. The reference interpreter
// (internal/cpu.Run) retires one instruction at a time through
// Monitor.OnRetire. The default fast-path executor (cpu.RunFast)
// predecodes the program and advances in block-structured strides,
// asking the PMU how many instructions can retire before any possible
// observable event (counter overflow, armed PEBS window, pending PMI,
// displaced IBS tag) and bulk-advancing counters across that span; LBR
// rings still see every taken branch. The two are bit-identical in every
// observable — Result, sample streams, LBR contents, error text — which
// a differential harness enforces across the full grid and thousands of
// fuzzed Builder-DSL programs (internal/cpu, internal/sampling,
// internal/pmu tests; `pmubench -engine both` self-checks entire
// sweeps). Options.Engine / `pmubench -engine fast|interp|both` select
// the engine; the fast path is ~2.7x faster (geomean over the Table 4
// kernels, BENCH_engine.json; CI gates regressions at ±15% via
// cmd/benchgate) and results never depend on the choice.
//
// # Counter multiplexing (virtualized multi-event PMU)
//
// Real deployments time-share counters: perf accepts more requested
// events than the machine's physical counters (four general counters on
// all three platforms, plus Intel's fixed instructions-retired counter),
// rotates them on a timer tick, and scales each raw count by
// enabled/running time. Options.Events requests counting events
// alongside any sampling method; when the list overcommits the budget
// the virtualized PMU layer (internal/pmu Mux) rotates the counters on
// Options.MuxTimesliceCycles under Options.MuxPolicy (round-robin like
// perf's flexible events, or priority like pinned events — overflow
// events are then never counted). Run.Counts reports, per event, the
// exact ground-truth count only a simulator has next to the perf-style
// scaled estimate, so the multiplexing-induced counting error is
// directly measurable: `pmubench -experiment
// mux-events|mux-timeslice|mux-policy` sweeps it against the number of
// events, the timeslice and the rotation policy across all machines
// (rendered from a store by `pmureport -table mux`), and `wlgen -events`
// prints the per-event accounting for one workload.
//
// # Spec-driven workloads and trace record/replay
//
// Beyond the frozen paper evaluation set, internal/workloads is a
// spec-driven generator: a PhasedSpec is a small JSON document naming
// phases (each an instruction-class mix, written out or fitted from a
// registered kernel/application with FitMix) and a schedule (fixed,
// alternate, burst, ramp) that sequences them across a macro loop.
// Generation is a pure function of (spec, scale) — byte-identical at
// any parallelism, with per-phase RNG streams derived via
// stats.DeriveSeed so editing one phase never perturbs another. Three
// spec-generated workloads (PhasedAlt, PhasedBurst, PhasedRamp) are
// registered alongside the hand-built PhaseShift as the phased family
// (PhasedWorkloads here), which extends the accuracy matrix to
// non-stationary event mixes (`pmubench -experiment phased`, rendered
// as Table 9 by `pmureport -table phased`); Kernels and Apps never
// include them, so the paper tables are untouched.
//
// internal/trace makes generated programs durable artifacts: a
// versioned, canonical JSONL trace format records the full program
// structure plus provenance (generating-spec fingerprint, source,
// scale) and a program fingerprint that is re-verified on decode.
// Replay reconstructs a bit-identical program.Program — record →
// replay → re-record is byte-identical, and a sampling run on the
// replayed program matches the original under both engines. Readers
// reject other format versions explicitly (re-record from the spec;
// there are no migrations). `wlgen -spec/-record/-replay` is the
// command-line surface; docs/WORKLOADS.md is the authoring guide.
//
// # Multi-tenant scheduling
//
// Real profiles are taken on shared machines, where the kernel
// timeslices tenants onto cores and context-switches the PMU state with
// them. internal/sched simulates that: CollectTenants runs N programs
// on one simulated core under a CFS-style timeslice scheduler with
// per-task PMU context save/restore, injecting the three noise
// mechanisms a real multi-tenant profile suffers — in-flight samples
// drained at preemption, kernel context-switch path events leaking into
// whichever tenant's counters are live, and PMI skid landing samples in
// the successor tenant's stream (cross-tenant attribution noise).
// SchedOptions.Migrate optionally migrates tenants across machine
// models at every switch. Each returned Run carries SchedStats
// (switches, drains, foreign samples, kernel leakage, migrations), and
// scheduling is a deterministic pure function of its inputs: tenant
// runs are bit-identical across both execution engines and at any
// parallelism. `pmubench -experiment tenants|tenants-timeslice` sweeps
// accuracy degradation against tenant count and timeslice (rendered
// from a store by `pmureport -table tenants`), with the single-tenant
// column bit-identical to the unscheduled accuracy tables.
//
// The heavy lifting lives in the internal packages (isa, program, cpu,
// pmu, machine, sampling, sched, ref, profile, lbr, analysis,
// workloads, trace, experiments, results, report, telemetry); this
// package re-exports the stable surface.
package pmutrust

import (
	"pmutrust/internal/analysis"
	"pmutrust/internal/core"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
	"pmutrust/internal/sched"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/trace"
	"pmutrust/internal/workloads"
)

// Re-exported core types. The aliases are the supported public names;
// their methods and fields are documented at the definition sites.
type (
	// Program is a built, validated workload program.
	Program = program.Program
	// Builder constructs Programs from functions, blocks and instructions.
	Builder = program.Builder
	// Machine models one of the paper's evaluation platforms.
	Machine = machine.Machine
	// Method is one sampling method of the paper's Table 3 registry.
	Method = sampling.Method
	// Options controls a collection run.
	Options = sampling.Options
	// Run is the outcome of one sampling collection.
	Run = sampling.Run
	// BlockProfile is an estimated basic-block profile.
	BlockProfile = profile.BlockProfile
	// FunctionProfile aggregates a BlockProfile by function.
	FunctionProfile = profile.FunctionProfile
	// Reference is the exact instrumentation-based profile ("REF").
	ReferenceProfile = ref.Profile
	// WorkloadSpec describes a buildable evaluation workload.
	WorkloadSpec = workloads.Spec
	// RankAgreement compares estimated and exact function rankings.
	RankAgreement = analysis.RankAgreement
	// Assessment is a full per-method trust evaluation with a
	// recommendation (the paper's §6.3, operationalized).
	Assessment = core.Assessment
	// AssessOptions controls an Assess run.
	AssessOptions = core.Options
	// EdgeProfile holds control-flow edge traversal counts (PGO input).
	EdgeProfile = profile.EdgeProfile
	// LoopStat is a loop discovered from backedges, with its trip count.
	LoopStat = profile.LoopStat
	// CountEvent selects a countable PMU event (Options.Events).
	CountEvent = pmu.Event
	// MuxPolicy selects the counter-multiplexing rotation policy.
	MuxPolicy = pmu.MuxPolicy
	// MuxCount is one multiplexed event's exact-vs-scaled outcome
	// (Run.Counts).
	MuxCount = pmu.MuxCount
	// PhasedSpec is a declarative phased-workload specification (the
	// wlgen v2 authoring surface; see docs/WORKLOADS.md).
	PhasedSpec = workloads.PhasedSpec
	// TraceEntry is one recorded program plus its provenance metadata.
	TraceEntry = trace.Entry
	// TraceMeta is the provenance carried by a trace entry.
	TraceMeta = trace.Meta
	// SchedOptions controls a multi-tenant scheduled collection
	// (CollectTenants): the embedded Options plus optional cross-model
	// migration.
	SchedOptions = sched.Options
	// SchedStats reports per-tenant scheduling noise accounting
	// (Run.Sched on runs collected by CollectTenants).
	SchedStats = sampling.SchedStats
	// TelemetrySink accumulates run-time counters (engine fast-path
	// strides and fallbacks, sweep cache traffic) when attached via
	// Options.Telemetry. A nil sink is always safe and costs nothing —
	// collection results are bit-identical with and without one.
	TelemetrySink = telemetry.Sink
	// TelemetrySnapshot is a point-in-time, canonically-marshalable view
	// of a sink's counters (TelemetrySink.Snapshot).
	TelemetrySnapshot = telemetry.Snapshot
)

// Re-exported countable events and multiplexer policies, so
// Options.Events and Options.MuxPolicy are usable without reaching into
// internal packages.
const (
	EvInstRetired = pmu.EvInstRetired
	EvUopsRetired = pmu.EvUopsRetired
	EvBrTaken     = pmu.EvBrTaken
	EvCondBr      = pmu.EvCondBr
	EvBrMispred   = pmu.EvBrMispred
	EvLoad        = pmu.EvLoad
	EvStore       = pmu.EvStore
	EvFPOp        = pmu.EvFPOp
	EvCall        = pmu.EvCall
	EvRet         = pmu.EvRet

	MuxRoundRobin = pmu.MuxRoundRobin
	MuxPriority   = pmu.MuxPriority
)

// ParseEventList parses a comma-separated countable-event list (the
// spelling of the -events flags), e.g. "inst_retired,load,br_taken".
func ParseEventList(s string) ([]CountEvent, error) { return pmu.ParseEventList(s) }

// NewBuilder starts a new program. See internal/program for the DSL.
func NewBuilder(name string) *Builder { return program.NewBuilder(name) }

// Workloads returns all evaluation workloads (kernels then applications).
func Workloads() []WorkloadSpec { return workloads.All() }

// Kernels returns the paper's §4.3 kernels.
func Kernels() []WorkloadSpec { return workloads.Kernels() }

// Apps returns the paper's application analogs.
func Apps() []WorkloadSpec { return workloads.Apps() }

// PhasedWorkloads returns the phased/bursty family (PhaseShift plus the
// spec-generated alternate/burst/ramp schedules). Never part of
// Kernels or Apps — the paper evaluation set stays frozen.
func PhasedWorkloads() []WorkloadSpec { return workloads.PhasedFamily() }

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (WorkloadSpec, error) { return workloads.ByName(name) }

// ParsePhasedSpec parses, normalizes and validates a phased-workload
// spec document (strict JSON: unknown fields are errors).
func ParsePhasedSpec(data []byte) (PhasedSpec, error) { return workloads.ParsePhasedSpec(data) }

// LoadPhasedSpec reads and parses a spec file (`wlgen -spec`).
func LoadPhasedSpec(path string) (PhasedSpec, error) { return workloads.LoadPhasedSpec(path) }

// BuildPhased generates the program for a spec at the given scale —
// a pure function of (spec, scale), byte-identical at any parallelism.
func BuildPhased(s PhasedSpec, scale float64) (*Program, error) {
	return workloads.BuildPhased(s, scale)
}

// RecordTrace wraps a built program and its provenance as a trace
// entry ready for WriteTraceFile.
func RecordTrace(prog *Program, meta TraceMeta) TraceEntry { return trace.Record(prog, meta) }

// WriteTraceFile writes entries as a versioned JSONL trace file.
func WriteTraceFile(path string, entries ...TraceEntry) error {
	return trace.WriteFile(path, entries...)
}

// ReadTraceFile reads every complete entry of a trace file, verifying
// format version and program fingerprints (a torn final line — the
// residue of a killed writer — is tolerated, like the results store).
func ReadTraceFile(path string) ([]TraceEntry, error) { return trace.ReadFile(path) }

// ReplayTrace reconstructs the last recorded program of a trace file,
// bit-identical to the program that was recorded (`wlgen -replay`).
func ReplayTrace(path string) (TraceEntry, error) { return trace.ReplayFile(path) }

// MagnyCours returns the AMD Opteron 6164 HE machine model.
func MagnyCours() Machine { return machine.MagnyCours() }

// Westmere returns the Intel Xeon X5650 machine model.
func Westmere() Machine { return machine.Westmere() }

// IvyBridge returns the Intel Xeon E3-1265L machine model.
func IvyBridge() Machine { return machine.IvyBridge() }

// Machines returns the three paper machines.
func Machines() []Machine { return machine.All() }

// MachineByName looks up a machine model by name.
func MachineByName(name string) (Machine, error) { return machine.ByName(name) }

// Methods returns the paper's Table 3 method registry.
func Methods() []Method { return sampling.Registry() }

// MethodByKey looks up one method ("classic", "precise", "precise+rand",
// "precise+prime", "precise+prime+rand", "pdir+ipfix", "lbr").
func MethodByKey(key string) (Method, error) { return sampling.MethodByKey(key) }

// Reference runs prog under exact instrumentation (the paper's Pin "REF"
// role) and returns per-block ground truth.
func Reference(prog *Program) (*ReferenceProfile, error) { return ref.Collect(prog) }

// Collect samples prog on mach with method m and returns the raw run.
// Most callers want Profile instead.
func Collect(prog *Program, mach Machine, m Method, opt Options) (*Run, error) {
	return sampling.Collect(prog, mach, m, opt)
}

// CollectTenants timeshares progs on one simulated core of mach under a
// CFS-style scheduler with per-task PMU context save/restore, sampling
// every tenant with method m. Runs come back in tenant order, each with
// its own sample stream and Run.Sched noise accounting. Set
// opt.Tenants to len(progs) (or leave 0 to let it default) and
// opt.SchedTimesliceCycles/SchedSwitchCostCycles to override the
// scheduling period and per-machine switch cost.
func CollectTenants(progs []*Program, mach Machine, m Method, opt SchedOptions) ([]*Run, error) {
	return sched.Collect(progs, mach, m, opt)
}

// Profile samples prog on mach with method m and builds the basic-block
// profile the way a tool using that method would (plain EBS attribution
// with optional IP+1 fix, or full LBR-stack decoding).
func Profile(prog *Program, mach Machine, m Method, opt Options) (*BlockProfile, *Run, error) {
	run, err := sampling.Collect(prog, mach, m, opt)
	if err != nil {
		return nil, nil, err
	}
	var bp *BlockProfile
	if run.Method.UseLBRStack {
		bp, _, err = lbr.BuildProfile(prog, run)
		if err != nil {
			return nil, nil, err
		}
	} else {
		bp = profile.FromSamples(prog, run)
	}
	return bp, run, nil
}

// AccuracyError scores an estimated profile against the exact reference
// with the paper's §3.3 metric (0 is perfect, lower is better).
func AccuracyError(est *BlockProfile, reference *ReferenceProfile) (float64, error) {
	return analysis.AccuracyError(est, reference)
}

// ImprovementFactor reports how many times smaller err is than base.
func ImprovementFactor(base, err float64) float64 {
	return analysis.ImprovementFactor(base, err)
}

// CompareRankings reports agreement between estimated and exact top-N
// function rankings (the paper's §5.2 FullCMS ordering check).
func CompareRankings(estRank, refRank []int, n int) RankAgreement {
	return analysis.CompareRankings(estRank, refRank, n)
}

// RefFunctionRanking converts a reference profile into a function ranking
// comparable with FunctionProfile.Ranking.
func RefFunctionRanking(r *ReferenceProfile) []int {
	return analysis.RefFunctionRanking(r)
}

// Assess evaluates every sampling method for prog on mach and returns the
// measured errors plus a machine-specific method recommendation.
func Assess(prog *Program, mach Machine, opt AssessOptions) (*Assessment, error) {
	return core.Assess(prog, mach, opt)
}

// ReferenceEdges returns the exact block-level control-flow edge profile
// of prog (ground truth for PGO-style edge counts and loop trip counts).
func ReferenceEdges(prog *Program) (*EdgeProfile, error) {
	return ref.CollectEdges(prog)
}

// EdgeProfileFromLBR reconstructs an edge profile from an LBR-method run
// (§2.1: basic-block graphs and loop trip counts from branch records).
func EdgeProfileFromLBR(prog *Program, run *Run) (*EdgeProfile, error) {
	return lbr.BuildEdgeProfile(prog, run)
}
